"""Tests for the synthetic execution substrate (datagen + executor)."""

import itertools
import math

import pytest

from repro import (
    Catalog,
    Relation,
    chain_graph,
    cycle_graph,
    optimize_query,
    uniform_statistics,
)
from repro.errors import CatalogError, OptimizationError
from repro.exec import Executor, generate_database, validate_estimates

from .conftest import random_connected_graph


def _brute_force_count(database) -> int:
    """Ground truth: full Cartesian scan with all predicates applied."""
    tables = database.tables
    count = 0
    for combo in itertools.product(*[range(t.n_rows) for t in tables]):
        if all(
            tables[u].columns[col][combo[u]] == tables[v].columns[col][combo[v]]
            for (u, v), col in database.edge_columns.items()
        ):
            count += 1
    return count


class TestDataGeneration:
    def test_row_counts_respect_scaling(self):
        graph = chain_graph(3)
        catalog = Catalog(
            graph,
            [Relation("a", 100.0), Relation("b", 10_000.0), Relation("c", 50.0)],
            {(0, 1): 0.1, (1, 2): 0.1},
        )
        database = generate_database(catalog, max_rows=1000, seed=0)
        # Global scale = 1000/10000 = 0.1.
        assert database.table(0).n_rows == 10
        assert database.table(1).n_rows == 1000
        assert database.table(2).n_rows == 5

    def test_no_scaling_below_cap(self):
        catalog = uniform_statistics(chain_graph(3), cardinality=100)
        database = generate_database(catalog, max_rows=1000, seed=0)
        assert all(t.n_rows == 100 for t in database.tables)

    def test_every_edge_has_columns(self):
        catalog = uniform_statistics(cycle_graph(4))
        database = generate_database(catalog, max_rows=50, seed=1)
        assert set(database.edge_columns) == set(catalog.graph.edges)
        for (u, v), column in database.edge_columns.items():
            assert len(database.table(u).column(column)) == database.table(u).n_rows
            assert len(database.table(v).column(column)) == database.table(v).n_rows

    def test_scaled_catalog_selectivities_realized(self):
        catalog = uniform_statistics(chain_graph(3), selectivity=0.3)
        database = generate_database(catalog, max_rows=100, seed=2)
        # domain = round(1/0.3) = 3 -> realized 1/3.
        for (u, v) in catalog.graph.edges:
            assert math.isclose(
                database.scaled_catalog.selectivity(u, v), 1.0 / 3.0
            )

    def test_missing_column_raises(self):
        catalog = uniform_statistics(chain_graph(2))
        database = generate_database(catalog, max_rows=10, seed=3)
        with pytest.raises(CatalogError):
            database.table(0).column("nope")

    def test_determinism(self):
        catalog = uniform_statistics(chain_graph(3))
        a = generate_database(catalog, max_rows=20, seed=9)
        b = generate_database(catalog, max_rows=20, seed=9)
        for ta, tb in zip(a.tables, b.tables):
            assert ta.columns == tb.columns


class TestExecutor:
    def test_matches_brute_force(self, rng):
        for _ in range(15):
            graph = random_connected_graph(rng, max_vertices=5)
            catalog = uniform_statistics(graph, cardinality=10, selectivity=0.4)
            database = generate_database(catalog, max_rows=10, seed=rng.randrange(1000))
            plan = optimize_query(database.scaled_catalog).plan
            result = Executor(database).execute(plan)
            assert result.n_rows == _brute_force_count(database)

    def test_row_count_independent_of_plan_shape(self, rng):
        # Any valid plan over the same data returns the same result size.
        graph = chain_graph(4)
        catalog = uniform_statistics(graph, cardinality=30, selectivity=0.2)
        database = generate_database(catalog, max_rows=30, seed=5)
        from repro import ALGORITHMS

        counts = set()
        for name in ("tdmincutbranch", "dpccp"):
            plan = optimize_query(
                database.scaled_catalog, algorithm=name
            ).plan
            counts.add(Executor(database).execute(plan).n_rows)
        # Also a deliberately different (left-deep) plan.
        from repro.heuristics import optimal_left_deep

        plan = optimal_left_deep(database.scaled_catalog)
        counts.add(Executor(database).execute(plan).n_rows)
        assert len(counts) == 1

    def test_intermediates_recorded(self):
        catalog = uniform_statistics(chain_graph(4), cardinality=50)
        database = generate_database(catalog, max_rows=50, seed=6)
        plan = optimize_query(database.scaled_catalog).plan
        result = Executor(database).execute(plan)
        assert len(result.intermediate_sizes) == 3  # one per join
        assert result.measured_cout == sum(result.intermediate_sizes.values())

    def test_row_limit_guard(self):
        catalog = uniform_statistics(chain_graph(3), cardinality=200,
                                     selectivity=1.0)
        database = generate_database(catalog, max_rows=200, seed=7)
        plan = optimize_query(database.scaled_catalog).plan
        with pytest.raises(OptimizationError):
            Executor(database, row_limit=100).execute(plan)


class TestEstimateValidation:
    def test_estimates_close_on_uniform_data(self):
        catalog = uniform_statistics(
            chain_graph(5), cardinality=1000, selectivity=0.002
        )
        database = generate_database(catalog, max_rows=1000, seed=7)
        plan = optimize_query(database.scaled_catalog).plan
        for record in validate_estimates(database, plan):
            assert 0.7 <= record["ratio"] <= 1.4, record

    def test_record_fields(self):
        catalog = uniform_statistics(chain_graph(3), cardinality=100)
        database = generate_database(catalog, max_rows=100, seed=8)
        plan = optimize_query(database.scaled_catalog).plan
        records = validate_estimates(database, plan)
        assert all(
            {"vertex_set", "estimated", "measured", "ratio"} <= set(r)
            for r in records
        )


class TestPhysicalOperators:
    def _canonical_rows(self, database, intermediate_result, plan):
        """Execute and return results in a slot-independent form."""
        executor = Executor(database)
        return executor.execute(plan)

    def test_all_operators_produce_identical_results(self, rng):
        from repro.exec.executor import _Intermediate

        for _ in range(10):
            graph = random_connected_graph(rng, max_vertices=5)
            catalog = uniform_statistics(graph, cardinality=15, selectivity=0.3)
            database = generate_database(
                catalog, max_rows=15, seed=rng.randrange(1000)
            )
            executor = Executor(database)
            plan = optimize_query(database.scaled_catalog).plan
            base = executor.execute(plan)

            # Rebuild the same plan shape with forced implementations.
            def force(node, implementation):
                from repro.plan.jointree import JoinTree

                if node.is_leaf:
                    return node
                return JoinTree(
                    vertex_set=node.vertex_set,
                    cardinality=node.cardinality,
                    cost=node.cost,
                    left=force(node.left, implementation),
                    right=force(node.right, implementation),
                    implementation=implementation,
                )

            for implementation in ("hash", "nestedloop", "sortmerge"):
                result = executor.execute(force(plan, implementation))
                assert result.n_rows == base.n_rows, implementation
                assert result.intermediate_sizes == base.intermediate_sizes

    def test_physical_plan_executes_with_chosen_operators(self):
        from repro import PhysicalCostModel

        catalog = uniform_statistics(chain_graph(4), cardinality=40,
                                     selectivity=0.1)
        database = generate_database(catalog, max_rows=40, seed=3)
        plan = optimize_query(
            database.scaled_catalog, cost_model=PhysicalCostModel()
        ).plan
        implementations = {n.implementation for n in plan.inner_nodes()}
        assert implementations <= {"hash", "nestedloop", "sortmerge"}
        result = Executor(database).execute(plan)
        assert result.n_rows == _brute_force_count(database)

    def test_sort_merge_handles_duplicate_key_groups(self):
        catalog = uniform_statistics(chain_graph(2), cardinality=30,
                                     selectivity=0.5)  # domain 2: heavy dups
        database = generate_database(catalog, max_rows=30, seed=4)
        from repro.plan.jointree import JoinTree

        leafs = [
            JoinTree(vertex_set=1 << v, cardinality=30, cost=0.0,
                     relation=f"R{v}")
            for v in range(2)
        ]
        join = JoinTree(
            vertex_set=0b11, cardinality=450.0, cost=450.0,
            left=leafs[0], right=leafs[1], implementation="sortmerge",
        )
        result = Executor(database).execute(join)
        assert result.n_rows == _brute_force_count(database)


class TestSkewedData:
    def test_zero_skew_is_uniformish(self):
        catalog = uniform_statistics(chain_graph(2), cardinality=1000,
                                     selectivity=0.01)
        database = generate_database(catalog, max_rows=1000, seed=1, skew=0.0)
        plan = optimize_query(database.scaled_catalog).plan
        records = validate_estimates(database, plan)
        assert 0.8 <= records[-1]["ratio"] <= 1.25

    def test_skew_inflates_true_join_sizes(self):
        # Zipf keys make heavy hitters collide: measured sizes exceed the
        # independence-assumption estimate — the classic estimation
        # failure this knob exists to demonstrate.
        catalog = uniform_statistics(chain_graph(2), cardinality=1000,
                                     selectivity=0.01)
        database = generate_database(
            catalog, max_rows=1000, seed=1, skew=1.5
        )
        plan = optimize_query(database.scaled_catalog).plan
        records = validate_estimates(database, plan)
        assert records[-1]["ratio"] > 2.0

    def test_skew_monotone(self):
        catalog = uniform_statistics(chain_graph(2), cardinality=800,
                                     selectivity=0.02)
        ratios = []
        for skew in (0.0, 1.0, 2.0):
            database = generate_database(
                catalog, max_rows=800, seed=2, skew=skew
            )
            plan = optimize_query(database.scaled_catalog).plan
            records = validate_estimates(database, plan)
            ratios.append(records[-1]["ratio"])
        assert ratios[0] < ratios[1] < ratios[2]

    def test_negative_skew_rejected(self):
        catalog = uniform_statistics(chain_graph(2))
        with pytest.raises(CatalogError):
            generate_database(catalog, max_rows=10, seed=0, skew=-1.0)

"""Figure 13: plan generation time on cycle queries."""

import pytest

from repro.optimizer.api import make_optimizer

from .conftest import make_instances

SIZES = [8, 12, 15]
ALGORITHMS = ["tdmincutbranch", "tdmincutlazy"]

_GEN = make_instances(seed=13)
_INSTANCES = {n: _GEN.fixed_shape("cycle", n) for n in SIZES}


@pytest.mark.benchmark(group="fig13-cycle")
@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_plan_generation_cycle(benchmark, algorithm, n):
    instance = _INSTANCES[n]

    def run():
        return make_optimizer(algorithm, instance.catalog).optimize()

    plan = benchmark(run)
    assert plan.n_joins() == n - 1

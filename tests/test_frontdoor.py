"""End-to-end tests for the sharded async HTTP front door.

Each test boots a real :class:`~repro.service.FrontDoor` (shard
processes, consistent-hash routing, the works) on an ephemeral port
inside the test's own event loop and talks to it over a raw asyncio TCP
client — the same bytes a production client would send.
"""

import asyncio
import json

import pytest

from repro.catalog.workload import WorkloadGenerator
from repro.optimizer.api import OptimizationRequest
from repro import serialize
from repro.service import FrontDoor, FrontDoorConfig


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


def run(coro):
    """Run one async test body in a fresh event loop."""
    asyncio.run(asyncio.wait_for(coro, timeout=120.0))


async def http_request(port, method, path, body=None, raw_body=None):
    """One HTTP exchange; returns (status, headers, parsed-or-raw body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = raw_body
        if payload is None:
            payload = b"" if body is None else json.dumps(body).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: test\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
        writer.write(head + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    head, _, body_bytes = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        parsed = json.loads(body_bytes)
    except ValueError:
        parsed = body_bytes
    return status, headers, parsed


class door_on:
    """Async context manager: start a FrontDoor, close it on the way out."""

    def __init__(self, **config_kwargs):
        config_kwargs.setdefault("shards", 2)
        config_kwargs.setdefault("deadline_seconds", 30.0)
        self.config = FrontDoorConfig(**config_kwargs)

    async def __aenter__(self):
        self.door = FrontDoor(self.config)
        await self.door.start()
        return self.door

    async def __aexit__(self, *exc_info):
        await self.door.close()


def request_document(seed=1, shape="chain", n=7, algorithm="tdmincutbranch"):
    instance = WorkloadGenerator(seed=seed).fixed_shape(shape, n)
    request = OptimizationRequest(query=instance.catalog, algorithm=algorithm)
    return serialize.request_to_dict(request)


def envelope(document, tenant=None, request_id=None, version=1):
    wire = {"version": version, "request": document}
    if tenant is not None:
        wire["tenant"] = tenant
    if request_id is not None:
        wire["request_id"] = request_id
    return wire


def relabelled_document(document, permutation):
    """The same request under a different vertex numbering (isomorphic)."""
    request = serialize.request_from_dict(document)
    catalog = request.resolved_catalog()
    graph = catalog.graph.relabelled(permutation)
    relations = [None] * graph.n_vertices
    for vertex in range(graph.n_vertices):
        relations[permutation[vertex]] = catalog.relations[vertex]
    selectivities = {
        (permutation[u], permutation[v]): catalog.selectivity(u, v)
        for (u, v) in catalog.graph.edges
    }
    from repro.catalog.statistics import Catalog

    relabelled = Catalog(graph, relations, selectivities)
    return serialize.request_to_dict(
        OptimizationRequest(query=relabelled, algorithm=request.algorithm)
    )


# ----------------------------------------------------------------------
# Happy paths
# ----------------------------------------------------------------------


class TestOptimizeEndpoint:
    def test_cold_then_warm_hits_same_shard(self):
        async def body():
            async with door_on() as door:
                document = request_document(seed=1)
                status, _, cold = await http_request(
                    door.port, "POST", "/v1/optimize",
                    envelope(document, request_id="r-cold"),
                )
                assert status == 200
                assert cold["version"] == 1
                assert cold["kind"] == "optimize_reply"
                assert cold["request_id"] == "r-cold"
                assert cold["result"]["cache_hit"] is False
                assert cold["result"]["plan"] is not None
                status, _, warm = await http_request(
                    door.port, "POST", "/v1/optimize",
                    envelope(document, request_id="r-warm"),
                )
                assert status == 200
                assert warm["result"]["cache_hit"] is True
                assert warm["shard"] == cold["shard"]

        run(body())

    def test_isomorphic_relabeling_routes_to_same_shard_and_hits(self):
        async def body():
            async with door_on() as door:
                document = request_document(seed=3, n=6)
                status, _, cold = await http_request(
                    door.port, "POST", "/v1/optimize", envelope(document)
                )
                assert status == 200 and cold["result"]["cache_hit"] is False
                permuted = relabelled_document(document, [3, 1, 5, 0, 2, 4])
                assert permuted != document
                status, _, warm = await http_request(
                    door.port, "POST", "/v1/optimize", envelope(permuted)
                )
                assert status == 200
                # Same signature -> same shard -> that shard's warm cache.
                assert warm["shard"] == cold["shard"]
                assert warm["result"]["cache_hit"] is True
                assert warm["result"]["signature"] == cold["result"]["signature"]

        run(body())

    def test_batch_isolates_bad_items(self):
        async def body():
            async with door_on() as door:
                good = request_document(seed=5)
                status, _, reply = await http_request(
                    door.port, "POST", "/v1/optimize_batch",
                    {
                        "version": 1,
                        "request_id": "b1",
                        "requests": [good, {"kind": "junk"}, good],
                    },
                )
                assert status == 200
                assert reply["kind"] == "optimize_batch_reply"
                kinds = [item["kind"] for item in reply["results"]]
                assert kinds == ["optimize_reply", "error", "optimize_reply"]
                assert reply["results"][1]["error"]["code"] == "invalid_request"
                assert reply["results"][1]["request_id"] == "b1/1"
                # The second good item hit the cache warmed by the first.
                assert reply["results"][2]["result"]["cache_hit"] is True

        run(body())

    def test_missing_version_field_is_read_as_v1(self):
        async def body():
            async with door_on() as door:
                wire = {"request": request_document(seed=7)}
                status, _, reply = await http_request(
                    door.port, "POST", "/v1/optimize", wire
                )
                assert status == 200 and reply["kind"] == "optimize_reply"

        run(body())


# ----------------------------------------------------------------------
# Typed rejections
# ----------------------------------------------------------------------


class TestRejections:
    def test_malformed_json_is_400_typed(self):
        async def body():
            async with door_on() as door:
                status, _, reply = await http_request(
                    door.port, "POST", "/v1/optimize", raw_body=b"{not json"
                )
                assert status == 400
                assert reply["kind"] == "error"
                assert reply["error"]["code"] == "malformed_json"
                assert reply["error"]["retryable"] is False

        run(body())

    def test_unsupported_envelope_version_is_400(self):
        async def body():
            async with door_on() as door:
                status, _, reply = await http_request(
                    door.port, "POST", "/v1/optimize",
                    envelope(request_document(), version=99, request_id="v99"),
                )
                assert status == 400
                assert reply["error"]["code"] == "unsupported_version"
                assert reply["request_id"] == "v99"

        run(body())

    def test_unsupported_request_document_version_is_400(self):
        async def body():
            async with door_on() as door:
                document = request_document()
                document["version"] = 42
                status, _, reply = await http_request(
                    door.port, "POST", "/v1/optimize", envelope(document)
                )
                assert status == 400
                assert reply["error"]["code"] == "unsupported_version"

        run(body())

    def test_missing_request_object_is_400(self):
        async def body():
            async with door_on() as door:
                status, _, reply = await http_request(
                    door.port, "POST", "/v1/optimize", {"version": 1}
                )
                assert status == 400
                assert reply["error"]["code"] == "invalid_request"

        run(body())

    def test_unknown_path_and_wrong_method(self):
        async def body():
            async with door_on() as door:
                status, _, reply = await http_request(
                    door.port, "GET", "/v1/nope"
                )
                assert status == 404
                assert reply["error"]["code"] == "not_found"
                status, headers, reply = await http_request(
                    door.port, "GET", "/v1/optimize"
                )
                assert status == 405
                assert reply["error"]["code"] == "method_not_allowed"
                assert headers.get("allow") == "POST"

        run(body())

    def test_tenant_quota_exhaustion_is_429_and_isolated(self):
        async def body():
            # rate=0: the burst of 2 is all a tenant ever gets.
            async with door_on(
                quota_rate=0.0, quota_burst=2.0, shards=1
            ) as door:
                document = request_document(seed=11, n=5)
                for _ in range(2):
                    status, _, _reply = await http_request(
                        door.port, "POST", "/v1/optimize",
                        envelope(document, tenant="greedy"),
                    )
                    assert status == 200
                status, headers, reply = await http_request(
                    door.port, "POST", "/v1/optimize",
                    envelope(document, tenant="greedy"),
                )
                assert status == 429
                assert reply["error"]["code"] == "quota_exhausted"
                assert reply["error"]["retryable"] is True
                assert "retry-after" in headers
                # Another tenant is unaffected.
                status, _, _reply = await http_request(
                    door.port, "POST", "/v1/optimize",
                    envelope(document, tenant="patient"),
                )
                assert status == 200

        run(body())


# ----------------------------------------------------------------------
# Backpressure and crash recovery
# ----------------------------------------------------------------------


class TestBackpressureAndCrashes:
    def test_saturated_shard_queue_returns_429(self):
        async def body():
            async with door_on(shards=2, queue_limit=2) as door:
                document = request_document(seed=13, n=5)
                target = door._route(envelope(document)["request"])
                client = door.shards.clients[target]
                # Hold the shard busy, then fill its queue with sleepers.
                blockers = [client.submit({"op": "sleep", "seconds": 1.5})]
                await asyncio.sleep(0.1)  # let the drain task take it
                blockers += [
                    client.submit({"op": "sleep", "seconds": 0.1})
                    for _ in range(2)  # 1 in flight + 2 queued = full
                ]
                status, headers, reply = await http_request(
                    door.port, "POST", "/v1/optimize", envelope(document)
                )
                assert status == 429
                assert reply["error"]["code"] == "over_capacity"
                assert reply["error"]["retryable"] is True
                assert headers.get("retry-after") == "1"
                await asyncio.gather(*blockers)
                # Once drained, the same request is served normally.
                status, _, reply = await http_request(
                    door.port, "POST", "/v1/optimize", envelope(document)
                )
                assert status == 200 and reply["kind"] == "optimize_reply"

        run(body())

    def test_shard_crash_is_typed_and_recycled_without_hurting_others(self):
        async def body():
            async with door_on(shards=2) as door:
                document = request_document(seed=17, n=5)
                target = door._route(envelope(document)["request"])
                victim = door.shards.clients[target]
                other = door.shards.clients[1 - target]
                restarts_before = victim.restarts
                # Queue real work behind the crash on the same shard: it
                # must survive the respawn.
                crash_future = victim.submit({"op": "crash"}, deadline_seconds=10.0)
                after_future = victim.submit(
                    {
                        "op": "optimize",
                        "request": document,
                        "request_id": "after-crash",
                    },
                    deadline_seconds=30.0,
                )
                crash_payload = await crash_future
                assert crash_payload["reply"]["error"]["code"] == "shard_crashed"
                assert crash_payload["status"] == 503
                after_payload = await after_future
                assert after_payload["status"] == 200
                assert after_payload["reply"]["kind"] == "optimize_reply"
                assert victim.restarts == restarts_before + 1
                assert victim.alive
                assert other.restarts == 0
                # The whole front door still serves over HTTP.
                status, _, health = await http_request(
                    door.port, "GET", "/v1/healthz"
                )
                assert status == 200 and health["status"] == "ok"

        run(body())

    def test_deadline_blown_shard_is_killed_and_typed_504(self):
        async def body():
            async with door_on(shards=1, deadline_seconds=0.3) as door:
                client = door.shards.clients[0]
                payload = await client.submit(
                    {"op": "sleep", "seconds": 10.0}, deadline_seconds=0.3
                )
                assert payload["status"] == 504
                assert payload["reply"]["error"]["code"] == "deadline_exceeded"
                assert client.restarts == 1
                # Respawned shard serves again.
                status, _, reply = await http_request(
                    door.port, "POST", "/v1/optimize",
                    envelope(request_document(seed=19, n=5)),
                )
                assert status == 200 and reply["kind"] == "optimize_reply"

        run(body())


# ----------------------------------------------------------------------
# Observability endpoints and cache warming
# ----------------------------------------------------------------------


class TestObservabilityAndWarming:
    def test_stats_healthz_and_metrics_shapes(self):
        async def body():
            async with door_on(shards=2) as door:
                document = request_document(seed=23)
                await http_request(
                    door.port, "POST", "/v1/optimize", envelope(document)
                )
                await http_request(
                    door.port, "POST", "/v1/optimize", envelope(document)
                )
                status, _, stats = await http_request(
                    door.port, "GET", "/v1/stats"
                )
                assert status == 200
                assert stats["version"] == 1
                assert len(stats["shards"]) == 2
                owner = door._route(document)
                shard_stats = stats["shards"][owner]["stats"]
                assert shard_stats["cache"]["size"] == 1
                assert shard_stats["totals"]["cache_hits"] == 1
                front = stats["frontdoor"]
                assert front["requests_total"]["/v1/optimize"] == 2
                assert front["route_memo"]["hits"] >= 1
                status, _, health = await http_request(
                    door.port, "GET", "/v1/healthz"
                )
                assert status == 200
                assert all(shard["alive"] for shard in health["shards"])
                status, headers, text = await http_request(
                    door.port, "GET", "/metrics"
                )
                assert status == 200
                assert headers["content-type"].startswith("text/plain")
                exposition = text.decode()
                assert "repro_frontdoor_requests_total" in exposition
                assert f"repro_shard{owner}_requests_total" in exposition
                assert "repro_frontdoor_shard_queue_depth" in exposition

        run(body())

    def test_shards_warm_from_snapshot_by_ring_ownership(self, tmp_path):
        snapshot_path = str(tmp_path / "cache.json")

        async def seed_snapshot():
            # One shard sees everything, so its cache holds every plan.
            async with door_on(shards=1) as door:
                for seed in range(6):
                    status, _, _reply = await http_request(
                        door.port, "POST", "/v1/optimize",
                        envelope(request_document(seed=seed, n=5)),
                    )
                    assert status == 200
                payload = await door.shards.clients[0].submit(
                    {"op": "save_cache", "path": snapshot_path},
                    deadline_seconds=10.0,
                )
                assert payload["ok"] and payload["entries"] == 6

        async def warm_start():
            async with door_on(
                shards=2, warm_cache_path=snapshot_path
            ) as door:
                status, _, stats = await http_request(
                    door.port, "GET", "/v1/stats"
                )
                assert status == 200
                warmed = [s["warmed_entries"] for s in stats["shards"]]
                # Entries are split by ring ownership, none duplicated.
                assert sum(warmed) == 6
                sizes = [s["stats"]["cache"]["size"] for s in stats["shards"]]
                assert sizes == warmed
                # A replayed request is a warm hit on its owning shard.
                status, _, reply = await http_request(
                    door.port, "POST", "/v1/optimize",
                    envelope(request_document(seed=0, n=5)),
                )
                assert status == 200
                assert reply["result"]["cache_hit"] is True

        run(seed_snapshot())
        run(warm_start())


class TestDrainAndCooperativeDeadlines:
    def test_draining_door_refuses_work_but_answers_healthz(self):
        async def body():
            async with door_on(shards=1) as door:
                door._draining = True
                try:
                    status, headers, reply = await http_request(
                        door.port, "POST", "/v1/optimize",
                        envelope(request_document(seed=1, n=5)),
                    )
                    assert status == 503
                    assert reply["error"]["code"] == "draining"
                    assert headers.get("retry-after") == "1"
                    status, _, health = await http_request(
                        door.port, "GET", "/v1/healthz"
                    )
                    assert status == 200
                    assert health["status"] == "draining"
                finally:
                    door._draining = False

        run(body())

    def test_drain_persists_shard_caches_for_the_next_boot(self, tmp_path):
        snapshot_path = str(tmp_path / "cache.json")

        async def first_life():
            async with door_on(shards=1, snapshot_path=snapshot_path) as door:
                status, _, reply = await http_request(
                    door.port, "POST", "/v1/optimize",
                    envelope(request_document(seed=3, n=6)),
                )
                assert status == 200
                assert reply["result"]["cache_hit"] is False
                await door.drain(grace_seconds=5.0)
                # drain() already closed everything; __aexit__'s close()
                # must be a no-op.

        async def second_life():
            async with door_on(shards=1, snapshot_path=snapshot_path) as door:
                status, _, stats = await http_request(
                    door.port, "GET", "/v1/stats"
                )
                assert status == 200
                assert stats["shards"][0]["warmed_entries"] == 1
                status, _, reply = await http_request(
                    door.port, "POST", "/v1/optimize",
                    envelope(request_document(seed=3, n=6)),
                )
                assert status == 200
                assert reply["result"]["cache_hit"] is True

        run(first_life())
        assert (tmp_path / "cache.json.shard0").exists()
        run(second_life())

    def test_respawned_worker_rewarms_from_its_snapshot(self, tmp_path):
        snapshot_path = str(tmp_path / "cache.json")

        async def body():
            async with door_on(shards=1, snapshot_path=snapshot_path) as door:
                client = door.shards.clients[0]
                document = request_document(seed=5, n=6)
                status, _, _reply = await http_request(
                    door.port, "POST", "/v1/optimize", envelope(document)
                )
                assert status == 200
                assert await client.save_snapshot() == 1
                # Hard-kill the worker; the respawn warms from the
                # freshest snapshot instead of starting cold.
                payload = await client.submit(
                    {"op": "crash"}, deadline_seconds=10.0
                )
                assert payload["status"] == 503
                status, _, reply = await http_request(
                    door.port, "POST", "/v1/optimize", envelope(document)
                )
                assert status == 200
                assert reply["result"]["cache_hit"] is True
                assert client.restarts == 1
                status, _, stats = await http_request(
                    door.port, "GET", "/v1/stats"
                )
                assert status == 200
                assert stats["shards"][0]["warmed_entries"] == 1

        run(body())

    def test_cooperative_deadline_salvages_instead_of_hard_kill(self):
        async def body():
            # Shard deadline of 0.4s on a clique-14: uncooperative
            # engines would be hard-killed and recycled; the cooperative
            # top-down engine returns a salvaged anytime plan within the
            # grace window instead.
            async with door_on(shards=1, deadline_seconds=0.4) as door:
                document = request_document(
                    seed=7, shape="clique", n=14, algorithm="tdmincutbranch"
                )
                status, _, reply = await http_request(
                    door.port, "POST", "/v1/optimize", envelope(document)
                )
                assert status == 200
                details = reply["result"]["details"]
                assert details["anytime"] == 1
                assert "salvage" in details
                client = door.shards.clients[0]
                assert client.restarts == 0
                status, _, health = await http_request(
                    door.port, "GET", "/v1/healthz"
                )
                assert status == 200
                shard = health["shards"][0]
                assert shard["alive"]
                assert shard["restarts"] == 0
                assert shard["hard_kills_avoided"] >= 0
                status, _, text = await http_request(
                    door.port, "GET", "/metrics"
                )
                assert status == 200
                exposition = text.decode()
                assert "repro_frontdoor_shard_hard_kills_avoided_total" in exposition

        run(body())


class TestRequestIdTracePropagation:
    def test_request_id_lands_on_the_shard_trace_root(self):
        # Exercised at the worker layer (the trace store lives in the
        # shard process; over HTTP it is only observable via trace
        # export, which /v1/stats does not ship).
        from repro.service.core import OptimizerService
        from repro.service.sharding import _optimize_on_shard

        service = OptimizerService(cache_capacity=8)
        job = {
            "op": "optimize",
            "request": request_document(seed=29, n=5),
            "request_id": "trace-me",
        }
        reply, status = _optimize_on_shard(service, job, shard=0)
        assert status == 200
        trace = service.traces.get(reply["result"]["trace_id"])
        assert trace is not None
        assert trace.root.attributes["request_id"] == "trace-me"

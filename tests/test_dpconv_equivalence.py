"""DPconv fast-exact tier vs the top-down enumerators: cost equivalence.

:class:`~repro.optimizer.dpconv.DPconvPlanGenerator` promises the exact
optimal *cost* for symmetric cost models — bit-identical wherever the
cardinality arithmetic itself is exact (power-of-two statistics keep
every float product representable and association-invariant), and
1e-9-close on arbitrary statistics where the two engines may associate
sums differently.  Counter accounting (``cost_evaluations`` = one per
ccp, ``cardinality_estimations`` = one per connected non-singleton set,
memo size = number of connected subsets) must match the symmetric
top-down run exactly.  Tie-breaks may legitimately differ — dpconv scans
splits in descending-submask order, not partitioner emission order — so
plan *shape* is never compared, only cost, and every plan must validate.
"""

import math
import random

import pytest

from repro.catalog.workload import uniform_statistics
from repro.cost.cout import CoutCostModel
from repro.cost.physical import PhysicalCostModel
from repro.enumeration.mincutbranch import MinCutBranch
from repro.errors import DisconnectedGraphError, OptimizationError
from repro.graph.query_graph import QueryGraph
from repro.graph.random import random_acyclic_graph, random_cyclic_graph
from repro.graph.shapes import (
    chain_graph,
    clique_graph,
    cycle_graph,
    grid_graph,
    star_graph,
)
from repro.optimizer.api import OptimizationRequest, optimize_request
from repro.optimizer.dpconv import DPconvPlanGenerator, dpconv_split_work
from repro.optimizer.topdown import TopDownPlanGenerator

SHAPES = [
    ("chain-9", chain_graph(9)),
    ("star-8", star_graph(8)),
    ("cycle-8", cycle_graph(8)),
    ("clique-7", clique_graph(7)),
    ("grid-3x3", grid_graph(3, 3)),
    ("random-acyclic-10", random_acyclic_graph(10, seed=7)),
    ("random-cyclic-10", random_cyclic_graph(10, 14, seed=9)),
]


def _available_backends():
    """Backends this host can run: pure python always, native rungs when
    their substrate imports/compiles.  The same corpus gates every rung
    so a host with numpy or a C toolchain proves the whole ladder."""
    backends = ["off"]
    from repro.optimizer import native
    from repro.optimizer._native_build import load_c_kernel

    if native._numpy() is not None:
        backends.append("numpy")
    if load_c_kernel(build=True) is not None:
        backends.append("c")
    return backends


BACKENDS = _available_backends()

#: The backend label each request is expected to report back.
EXPECTED_LABEL = {"off": "python", "numpy": "numpy", "c": "c"}


class SymmetricModel(CoutCostModel):
    """C_out priced through the generic symmetric code path.

    ``DPconvPlanGenerator`` special-cases ``type(model) is CoutCostModel``
    into a hot loop that hoists the split-independent local term; any
    subclass falls through to the per-split ``join_cost`` loop.  Same
    numbers, different code path — so comparing the two proves the
    generic loop against both the hot loop and the reference driver.
    """

    name = "sym-cout"


def exact_catalog(graph):
    """Power-of-two statistics: every cardinality product is exact."""
    return uniform_statistics(graph, cardinality=4.0, selectivity=0.25)


def run_pair(catalog, cost_model_cls=CoutCostModel, backend="off"):
    """Optimize with the top-down kernel and with dpconv; return both."""
    reference = TopDownPlanGenerator(
        catalog, MinCutBranch, cost_model_cls(), use_kernel=True
    )
    conv = DPconvPlanGenerator(
        catalog, cost_model=cost_model_cls(), native_backend=backend
    )
    return reference, reference.optimize(), conv, conv.optimize()


def assert_cost_identical(reference, ref_plan, conv, conv_plan):
    """Bit-identical cost, matching counters, same memo coverage."""
    assert conv.last_kernel == "dpconv"
    assert conv_plan.cost == ref_plan.cost
    assert conv_plan.cardinality == ref_plan.cardinality
    conv_plan.validate()
    ref_plan.validate()
    assert (
        conv.builder.cost_evaluations == reference.builder.cost_evaluations
    )
    assert (
        conv.builder.estimator.estimations
        == reference.builder.estimator.estimations
    )
    ref_memo = reference.builder.memo
    conv_memo = conv.builder.memo
    assert len(conv_memo) == len(ref_memo)
    for entry in ref_memo.entries():
        other = conv_memo.lookup(entry.vertex_set)
        assert other is not None
        assert other.cardinality == entry.cardinality
        assert other.cost == entry.cost


class TestShapeEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("shape", [name for name, _ in SHAPES])
    def test_bit_identical_cost_on_exact_statistics(self, shape, backend):
        graph = dict(SHAPES)[shape]
        pair = run_pair(exact_catalog(graph), backend=backend)
        assert pair[2].last_backend == EXPECTED_LABEL[backend]
        assert_cost_identical(*pair)

    @pytest.mark.parametrize("shape", [name for name, _ in SHAPES])
    def test_generic_symmetric_path_matches_too(self, shape):
        graph = dict(SHAPES)[shape]
        pair = run_pair(exact_catalog(graph), SymmetricModel)
        # Generic symmetric subclasses must stay on the pure engine:
        # the native rungs hard-code the C_out pricing.
        assert pair[2].last_backend == "python"
        assert_cost_identical(*pair)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_two_relation_join(self, backend):
        assert_cost_identical(
            *run_pair(exact_catalog(chain_graph(2)), backend=backend)
        )

    def test_single_relation_is_a_leaf(self):
        catalog = exact_catalog(chain_graph(1))
        conv = DPconvPlanGenerator(catalog)
        plan = conv.optimize()
        assert plan.n_joins() == 0
        assert conv.last_kernel == "dpconv"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_seeded_random_graphs_exact_statistics(self, backend):
        rng = random.Random(0xD9C0)
        for _ in range(12):
            n = rng.randint(2, 9)
            if n < 3 or rng.random() < 0.5:
                graph = random_acyclic_graph(n, rng=rng)
            else:
                m = rng.randint(n, n * (n - 1) // 2)
                graph = random_cyclic_graph(n, m, rng=rng)
            assert_cost_identical(
                *run_pair(exact_catalog(graph), backend=backend)
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_arbitrary_statistics_agree_to_1e9(self, backend):
        # Arbitrary floats lose association invariance, so the engines
        # may differ in the last ulps; optimality itself is unaffected.
        # (The C rung mirrors the pure loop's operation order exactly
        # and stays bit-identical even here; numpy's vectorized
        # cardinality sweep may associate products differently.)
        rng = random.Random(0xA11)
        for _ in range(10):
            n = rng.randint(3, 9)
            graph = random_acyclic_graph(n, rng=rng)
            catalog = uniform_statistics(
                graph,
                cardinality=rng.uniform(10.0, 5000.0),
                selectivity=rng.uniform(0.001, 0.9),
            )
            reference, ref_plan, conv, conv_plan = run_pair(
                catalog, backend=backend
            )
            assert math.isclose(
                conv_plan.cost, ref_plan.cost, rel_tol=1e-9
            )
            assert (
                conv.builder.cost_evaluations
                == reference.builder.cost_evaluations
            )


class TestRestrictions:
    def test_asymmetric_model_raises_at_construction(self):
        catalog = exact_catalog(chain_graph(5))
        with pytest.raises(OptimizationError):
            DPconvPlanGenerator(catalog, cost_model=PhysicalCostModel())

    def test_pruning_request_raises_at_construction(self):
        catalog = exact_catalog(chain_graph(5))
        with pytest.raises(OptimizationError):
            DPconvPlanGenerator(catalog, enable_pruning=True)

    def test_disconnected_graph_raises_typed_error(self):
        graph = QueryGraph(4, [(0, 1), (2, 3)])
        catalog = exact_catalog(graph)
        with pytest.raises(DisconnectedGraphError):
            DPconvPlanGenerator(catalog).optimize()


class TestRegistryRouting:
    def test_symmetric_request_runs_native_dpconv(self):
        request = OptimizationRequest(
            query=exact_catalog(cycle_graph(7)), algorithm="dpconv"
        )
        result = optimize_request(request)
        assert result.details["kernel"] == "dpconv"
        baseline = optimize_request(
            OptimizationRequest(query=exact_catalog(cycle_graph(7)))
        )
        assert result.cost == baseline.cost

    def test_asymmetric_request_falls_back_to_topdown(self):
        request = OptimizationRequest(
            query=exact_catalog(cycle_graph(7)),
            algorithm="dpconv",
            cost_model=PhysicalCostModel(),
        )
        result = optimize_request(request)
        assert result.ok
        assert result.details["kernel"] == "fast"
        baseline = optimize_request(
            OptimizationRequest(
                query=exact_catalog(cycle_graph(7)),
                cost_model=PhysicalCostModel(),
            )
        )
        assert result.cost == baseline.cost

    def test_pruning_request_falls_back_to_topdown(self):
        request = OptimizationRequest(
            query=exact_catalog(chain_graph(8)),
            algorithm="dpconv",
            enable_pruning=True,
        )
        result = optimize_request(request)
        assert result.ok
        baseline = optimize_request(
            OptimizationRequest(query=exact_catalog(chain_graph(8)))
        )
        assert result.cost == baseline.cost


class TestWorkModel:
    def test_split_work_closed_form(self):
        # sum over sets S of 2^(|S|-1) = 3^n / 2 (integer division only
        # drops the empty set's half-unit).
        for n in range(1, 12):
            total = sum(
                2 ** (bin(s).count("1") - 1) for s in range(1, 2 ** n)
            )
            assert dpconv_split_work(n) == total
        assert dpconv_split_work(0) == 0

    def test_negative_n_rejected(self):
        with pytest.raises(OptimizationError):
            dpconv_split_work(-1)

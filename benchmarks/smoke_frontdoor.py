#!/usr/bin/env python
"""Serve-smoke: boot the CLI front door and exercise the wire API.

Unlike ``bench_frontdoor_qps.py`` (which embeds a FrontDoor in-process),
this drives the real production entry point: ``python -m repro.cli serve``
as a subprocess, port 0, parsing the printed ``listening on`` line.  The
scripted workload asserts the contract a deployment's load balancer and
monitoring depend on:

* cold request -> 200 ``optimize_reply``; exact replay -> warm cache hit
* malformed JSON -> 400 with ``error.code = "malformed_json"``
* envelope version 99 -> 400 with ``error.code = "unsupported_version"``
* ``GET /v1/healthz`` -> 200, every shard alive
* ``GET /v1/stats`` -> per-shard snapshots with the expected cache hit
* ``GET /metrics`` -> Prometheus text with front-door and shard families

Exits non-zero on the first broken expectation.  Used by
``make serve-smoke`` (part of ``make verify``) and CI.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

SERVE_ARGS = [
    sys.executable,
    "-m",
    "repro.cli",
    "serve",
    "--port",
    "0",
    "--shards",
    "2",
    "--deadline",
    "30",
]


def post(port: int, path: str, payload: bytes, timeout: float = 30.0):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=payload,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def get(port: int, path: str, timeout: float = 30.0):
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=timeout
        ) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def expect(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")


def request_document():
    from repro.catalog.workload import WorkloadGenerator
    from repro.optimizer.api import OptimizationRequest
    from repro import serialize

    instance = WorkloadGenerator(seed=7).fixed_shape("chain", 7)
    return serialize.request_to_dict(
        OptimizationRequest(query=instance.catalog, algorithm="tdmincutbranch")
    )


def main() -> int:
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    server = subprocess.Popen(
        SERVE_ARGS,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        deadline = time.monotonic() + 60.0
        banner = server.stdout.readline()
        while "listening on" not in banner:
            expect(
                server.poll() is None, f"server exited early: {banner!r}"
            )
            expect(
                time.monotonic() < deadline, "server never printed its banner"
            )
            banner = server.stdout.readline()
        match = re.search(r"listening on \S+:(\d+)", banner)
        expect(match is not None, f"unparseable banner: {banner!r}")
        port = int(match.group(1))
        print(f"server up on port {port}")

        document = request_document()
        body = json.dumps(
            {"version": 1, "tenant": "smoke", "request_id": "s-1",
             "request": document}
        ).encode()

        status, raw = post(port, "/v1/optimize", body)
        reply = json.loads(raw)
        expect(status == 200, f"cold optimize returned {status}: {raw!r}")
        expect(reply["kind"] == "optimize_reply", f"unexpected kind: {reply}")
        expect(reply["version"] == 1, "reply envelope must carry version 1")
        expect(
            reply["result"]["cache_hit"] is False, "first request must be cold"
        )
        print("cold optimize ok")

        status, raw = post(port, "/v1/optimize", body)
        reply = json.loads(raw)
        expect(status == 200, f"warm optimize returned {status}")
        expect(
            reply["result"]["cache_hit"] is True,
            "exact replay must be a warm cache hit",
        )
        print("warm replay hit the plan cache")

        status, raw = post(port, "/v1/optimize", b"{broken json")
        reply = json.loads(raw)
        expect(status == 400, f"malformed JSON returned {status}, want 400")
        expect(
            reply["error"]["code"] == "malformed_json",
            f"wrong error code: {reply}",
        )
        print("malformed JSON rejected with a typed 400")

        status, raw = post(
            port,
            "/v1/optimize",
            json.dumps({"version": 99, "request": document}).encode(),
        )
        reply = json.loads(raw)
        expect(status == 400, f"version 99 returned {status}, want 400")
        expect(
            reply["error"]["code"] == "unsupported_version",
            f"wrong error code: {reply}",
        )
        print("future wire version rejected with unsupported_version")

        status, raw = get(port, "/v1/healthz")
        health = json.loads(raw)
        expect(status == 200, f"healthz returned {status}")
        expect(health["status"] == "ok", f"unhealthy: {health}")
        expect(
            all(shard["alive"] for shard in health["shards"]),
            f"dead shard in {health}",
        )
        print(f"healthz ok ({len(health['shards'])} shards alive)")

        status, raw = get(port, "/v1/stats")
        stats = json.loads(raw)
        expect(status == 200, f"stats returned {status}")
        total_hits = sum(
            shard.get("stats", {}).get("totals", {}).get("cache_hits", 0)
            for shard in stats["shards"]
        )
        expect(total_hits >= 1, f"no cache hit recorded in stats: {stats}")
        print("stats aggregation ok")

        status, raw = get(port, "/metrics")
        text = raw.decode()
        expect(status == 200, f"metrics returned {status}")
        for needle in (
            "repro_frontdoor_requests_total",
            "repro_frontdoor_rejections_total",
            "repro_shard0_requests_total",
        ):
            expect(needle in text, f"metrics exposition missing {needle}")
        print("prometheus exposition ok")

        print("serve-smoke: all checks passed")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait(timeout=10.0)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Service quickstart: a long-lived optimizer with a shape-keyed plan cache.

A production optimizer sees the same query *shapes* thousands of times —
the same star-join template with fresh parameters, the same reporting
chain from another tenant.  The :class:`repro.service.OptimizerService`
amortizes enumeration across such repeats:

1. submit requests (single or batched) through `OptimizationRequest`,
2. hits are served from a bounded LRU keyed by the canonical form of
   (graph shape, rounded statistics, cost model, algorithm, pruning),
3. `stats_snapshot()` exposes hit/miss/eviction counts and per-algorithm
   latency percentiles.

Run:  python examples/service_quickstart.py
"""

import time

from repro import OptimizationRequest, WorkloadGenerator
from repro.service import OptimizerService


def main() -> None:
    service = OptimizerService(cache_capacity=128)
    generator = WorkloadGenerator(seed=2026)

    # --- one hot template, repeated --------------------------------------
    template = generator.fixed_shape("clique", 12)
    started = time.perf_counter()
    cold = service.optimize(template.catalog)
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm = service.optimize(template.catalog)
    warm_seconds = time.perf_counter() - started

    print("clique-12 template:")
    print(f"  cold: {cold_seconds * 1e3:9.2f} ms  (cache_hit={cold.cache_hit})")
    print(f"  warm: {warm_seconds * 1e3:9.2f} ms  (cache_hit={warm.cache_hit})")
    print(f"  speedup: {cold_seconds / max(warm_seconds, 1e-9):,.0f}x")
    print(f"  same cost: {abs(cold.cost - warm.cost) < 1e-9}")
    print()

    # --- an isomorphic relabeling of the same shape also hits ------------
    permutation = list(reversed(range(12)))
    relabeled = template.graph.relabelled(permutation)
    # (uniform statistics here, so the relabeled instance keys identically)
    from repro import uniform_statistics

    service.optimize(uniform_statistics(template.graph))
    mirrored = service.optimize(uniform_statistics(relabeled))
    print(f"isomorphic relabeling hits the cache: {mirrored.cache_hit}")
    print()

    # --- batched execution with per-item error isolation ------------------
    batch = [
        OptimizationRequest(query=generator.fixed_shape("chain", 8), tag="chain"),
        OptimizationRequest(query=generator.fixed_shape("star", 8), tag="star"),
        OptimizationRequest(query=generator.fixed_shape("cycle", 8), tag="cycle"),
    ]
    results = service.optimize_batch(batch, workers=3)
    print("batch results:")
    for result in results:
        print(f"  {result.tag:6s} -> {result.summary()}")
    print()

    # --- observability -----------------------------------------------------
    snapshot = service.stats_snapshot()
    cache = snapshot["cache"]
    print("stats snapshot:")
    print(
        f"  cache: size={cache['size']}/{cache['capacity']} "
        f"hits={cache['hits']} misses={cache['misses']} "
        f"evictions={cache['evictions']}"
    )
    for name, stats in snapshot["algorithms"].items():
        latency = stats["latency"]
        print(
            f"  {name:16s} count={stats['count']:<3d} "
            f"p50={latency['p50_ms']:.2f}ms p95={latency['p95_ms']:.2f}ms"
        )


if __name__ == "__main__":
    main()

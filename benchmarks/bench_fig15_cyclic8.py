"""Figure 15: random cyclic queries with 8 vertices, time vs edge count."""

import pytest

from repro.optimizer.api import make_optimizer

from .conftest import make_instances

EDGE_COUNTS = [10, 16, 22, 28]
ALGORITHMS = ["tdmincutbranch", "tdmincutlazy"]

_GEN = make_instances(seed=15)
_INSTANCES = {m: _GEN.random_cyclic(8, m) for m in EDGE_COUNTS}


@pytest.mark.benchmark(group="fig15-cyclic8")
@pytest.mark.parametrize("edges", EDGE_COUNTS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_plan_generation_cyclic8(benchmark, algorithm, edges):
    instance = _INSTANCES[edges]
    assert instance.n_edges == edges

    def run():
        return make_optimizer(algorithm, instance.catalog).optimize()

    plan = benchmark(run)
    assert plan.n_joins() == 7

"""Shard routing and admission primitives for the serving front door.

The front door (:mod:`repro.service.frontdoor`) partitions traffic across
N worker *shards* — separate processes, each owning a private
:class:`~repro.service.OptimizerService` with its own plan cache and
breaker state.  This module holds the pieces that make that work:

* :class:`ConsistentHashRing` — maps request signatures onto shards with
  virtual nodes, so isomorphic queries (which share a signature) always
  land on the shard holding their cached plan, and resizing the shard
  count moves only ``~1/N`` of the keyspace.
* :class:`TokenBucket` / :class:`TenantQuotas` — per-tenant admission
  quotas: a tenant names itself in the wire envelope and is throttled by
  its own refilling bucket before any shard work happens.
* :func:`shard_worker_main` — the worker-process loop: builds the shard's
  service, optionally warms its cache from a persisted snapshot
  (loading *only* the entries the ring assigns to it), and serves
  ``optimize``/``stats``/``ping``/``save_cache`` ops over a pipe.
* :class:`ShardClient` / :class:`ShardPool` — the asyncio parent side:
  a bounded queue per shard (backpressure -> HTTP 429 upstream), one
  in-flight op at a time per pipe, cooperative deadlines (the remaining
  budget is stamped into the optimize request so the shard's engine
  stops itself and salvages; kill+respawn only fires when the grace on
  top is also missed), and crash detection with automatic respawn that
  preserves the queue.  A respawned shard re-warms from the latest
  ring-filtered snapshot (:meth:`ShardClient.save_snapshot`) when one
  exists, falling back to the startup snapshot.

Everything here is stdlib-only (``multiprocessing``, ``asyncio``,
``hashlib``); the wire status mapping lives in
:data:`HTTP_STATUS_BY_CODE` so the front door and tests agree on it.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import multiprocessing
import os
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    CatalogError,
    ErrorInfo,
    GraphError,
    InvalidRequestError,
    OptimizationError,
    UnsupportedVersionError,
)

__all__ = [
    "ConsistentHashRing",
    "HTTP_STATUS_BY_CODE",
    "ShardClient",
    "ShardPool",
    "TenantQuotas",
    "TokenBucket",
    "http_status_for_code",
    "parse_request_document",
    "shard_worker_main",
]

#: Stable wire error code -> HTTP status.  Part of the v1 wire schema
#: (documented in ``docs/SERVING.md``); codes must keep their status
#: across releases so clients can branch on either.
HTTP_STATUS_BY_CODE = {
    "malformed_json": 400,
    "invalid_request": 400,
    "unsupported_version": 400,
    "invalid_query": 400,
    "quota_exhausted": 429,
    "over_capacity": 429,
    "admission_rejected": 429,
    "breaker_open": 503,
    "shard_crashed": 503,
    "draining": 503,
    "deadline_exceeded": 504,
    "optimization_failed": 422,
    "retry_exhausted": 422,
    "not_found": 404,
    "method_not_allowed": 405,
    "internal": 500,
}


def http_status_for_code(code: str) -> int:
    """HTTP status for a wire error code (unknown codes map to 500)."""
    return HTTP_STATUS_BY_CODE.get(code, 500)


# ----------------------------------------------------------------------
# Consistent hashing
# ----------------------------------------------------------------------


def _ring_point(label: str) -> int:
    """A 64-bit point on the ring for an arbitrary label."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class ConsistentHashRing:
    """Consistent hash ring with virtual nodes.

    Each shard contributes ``replicas`` points (``sha256`` of
    ``"shard-<index>/<replica>"``); a key is owned by the first point at
    or clockwise after its own hash.  The construction is fully
    deterministic — the worker processes rebuild an identical ring from
    ``(shard_count, replicas)`` alone to decide which snapshot entries to
    warm — and routing a *signature* (not the raw request) means every
    isomorphic relabeling of a query shape routes to the same shard.
    """

    def __init__(self, shard_count: int, replicas: int = 64):
        if shard_count < 1:
            raise OptimizationError(
                f"shard count must be >= 1, got {shard_count}"
            )
        if replicas < 1:
            raise OptimizationError(
                f"ring replicas must be >= 1, got {replicas}"
            )
        self.shard_count = shard_count
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(shard_count):
            for replica in range(replicas):
                points.append((_ring_point(f"shard-{shard}/{replica}"), shard))
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    def owner(self, signature: str) -> int:
        """Return the shard index owning ``signature``."""
        index = bisect.bisect_right(self._keys, _ring_point(signature))
        if index == len(self._points):
            index = 0
        return self._points[index][1]


# ----------------------------------------------------------------------
# Per-tenant admission quotas
# ----------------------------------------------------------------------


class TokenBucket:
    """A refilling token bucket: ``rate`` tokens/second, ``burst`` cap.

    Not thread-safe — the front door runs it on one event loop.  A
    non-positive ``rate`` never refills (the initial burst is all a
    tenant ever gets), which the quota tests use for determinism.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if burst < 1:
            raise OptimizationError(f"quota burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        if self.rate > 0:
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
        self._stamp = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; False (and no debit) otherwise."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after_seconds(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (0 if now)."""
        self._refill()
        deficit = tokens - self._tokens
        if deficit <= 0:
            return 0.0
        if self.rate <= 0:
            return 60.0  # never refills; tell clients to back off a while
        return deficit / self.rate


class TenantQuotas:
    """Registry of per-tenant token buckets (bounded, LRU-evicted).

    ``rate=None`` disables admission quotas entirely (every acquire
    succeeds).  Unknown tenants get a fresh bucket on first sight; the
    registry holds at most ``max_tenants`` buckets so a tenant-id flood
    cannot grow memory without bound (an evicted tenant simply starts
    over with a full burst).
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: float = 10.0,
        max_tenants: int = 1024,
        clock=time.monotonic,
    ):
        self.rate = rate
        self.burst = burst
        self.max_tenants = max_tenants
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self.rejections = 0

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate or 0.0, self.burst, clock=self._clock)
            self._buckets[tenant] = bucket
            while len(self._buckets) > self.max_tenants:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(tenant)
        return bucket

    def try_acquire(self, tenant: str, tokens: float = 1.0) -> bool:
        if not self.enabled:
            return True
        if self._bucket(tenant).try_acquire(tokens):
            return True
        self.rejections += 1
        return False

    def retry_after_seconds(self, tenant: str, tokens: float = 1.0) -> float:
        if not self.enabled:
            return 0.0
        return self._bucket(tenant).retry_after_seconds(tokens)


# ----------------------------------------------------------------------
# The worker process
# ----------------------------------------------------------------------


def _warm_owned_entries(cache, path: str, ring: ConsistentHashRing, shard: int) -> int:
    """Warm ``cache`` with the snapshot entries ``ring`` assigns to ``shard``.

    Reads a snapshot written by :meth:`repro.service.PlanCache.save` (or
    any shard's ``save_cache`` op) and loads only the entries whose
    signature this shard owns — every shard can warm from one shared
    snapshot without duplicating plans it will never be asked for.
    Missing or torn files warm zero entries (with a warning) rather than
    failing shard spin-up; corrupt entries are skipped.
    """
    from repro.serialize import plan_cache_from_dict_tolerant

    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        return 0
    except (OSError, ValueError) as exc:
        warnings.warn(
            f"cache snapshot {path!r} is unreadable ({exc}); "
            "shard starts cold",
            RuntimeWarning,
            stacklevel=2,
        )
        return 0
    try:
        entries, _rejected = plan_cache_from_dict_tolerant(document)
    except Exception as exc:
        warnings.warn(
            f"cache snapshot {path!r} is not a plan cache ({exc}); "
            "shard starts cold",
            RuntimeWarning,
            stacklevel=2,
        )
        return 0
    warmed = 0
    for entry in entries:
        if ring.owner(entry.signature) == shard:
            cache.put(entry)
            warmed += 1
    return warmed


def parse_request_document(document: Dict[str, Any]):
    """Decode a wire ``optimization_request`` document with typed errors.

    Errors that already carry a precise wire code (unsupported version,
    unusable graph/catalog) pass through; everything else a malformed
    document can raise — wrong ``kind``, missing keys, mistyped values —
    becomes :class:`~repro.errors.InvalidRequestError`, so clients see
    ``invalid_request`` (HTTP 400) rather than ``optimization_failed``.
    """
    from repro import serialize

    try:
        return serialize.request_from_dict(document)
    except (UnsupportedVersionError, GraphError, CatalogError):
        raise
    except Exception as exc:
        raise InvalidRequestError(
            f"undecodable optimization_request document: {exc}"
        ) from exc


def _optimize_on_shard(service, job: Dict[str, Any], shard: int):
    """Run one optimize op; returns ``(reply_envelope, http_status)``.

    Failures become a typed v1 error envelope instead of an exception —
    the parent never sees a traceback over the pipe.  A wire-supplied
    ``request_id`` is stamped onto the request's trace root so operators
    can join client logs against shard traces.
    """
    from repro import serialize

    request_id = job.get("request_id")
    try:
        request = parse_request_document(job["request"])
        result = service.optimize(request)
    except Exception as exc:
        info = ErrorInfo.from_exception(exc)
        reply = {
            "version": 1,
            "kind": "error",
            "request_id": request_id,
            "shard": shard,
            "error": info.to_dict(),
        }
        return reply, http_status_for_code(info.code)
    if request_id is not None and result.trace_id is not None:
        trace = service.traces.get(result.trace_id)
        if trace is not None:
            trace.set_root("request_id", request_id)
    reply = {
        "version": 1,
        "kind": "optimize_reply",
        "request_id": request_id,
        "shard": shard,
        "result": serialize.result_to_dict(result),
    }
    return reply, 200


def shard_worker_main(
    conn,
    shard: int,
    shard_count: int,
    replicas: int,
    service_kwargs: Dict[str, Any],
    warm_cache_path: Optional[str] = None,
) -> None:
    """Entry point of one shard process: serve ops from ``conn`` forever.

    Ops are dicts with an ``"op"`` key; every op gets exactly one reply
    dict carrying ``"version": 1``.  ``optimize`` replies add the HTTP
    ``status`` the front door should send and — when the job asked with
    ``encode_reply`` — the pre-encoded JSON ``body`` bytes, so the
    parent's event loop only frames HTTP around them (keeping front-door
    CPU out of the serving hot path).  The loop exits on ``shutdown`` or
    a closed pipe; ``crash`` hard-exits for chaos tests.
    """
    from repro.service.core import OptimizerService

    service = OptimizerService(**service_kwargs)
    warmed = 0
    if warm_cache_path:
        ring = ConsistentHashRing(shard_count, replicas)
        warmed = _warm_owned_entries(service.cache, warm_cache_path, ring, shard)
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            break
        op = job.get("op")
        if op == "shutdown":
            try:
                conn.send({"version": 1, "ok": True, "shard": shard})
            except (OSError, BrokenPipeError):
                pass
            break
        if op == "crash":
            # Chaos hook: die without cleanup, like a segfault would.
            os._exit(int(job.get("exit_code", 1)))
        try:
            if op == "ping":
                reply = {
                    "version": 1,
                    "ok": True,
                    "shard": shard,
                    "pid": os.getpid(),
                    "warmed_entries": warmed,
                }
            elif op == "sleep":
                # Test hook: hold the shard busy for a known duration.
                time.sleep(float(job.get("seconds", 0.0)))
                reply = {"version": 1, "ok": True, "shard": shard}
            elif op == "stats":
                reply = {
                    "version": 1,
                    "ok": True,
                    "shard": shard,
                    "warmed_entries": warmed,
                    "stats": service.stats_snapshot(),
                }
            elif op == "save_cache":
                count = service.save_cache(job["path"])
                reply = {
                    "version": 1,
                    "ok": True,
                    "shard": shard,
                    "entries": count,
                }
            elif op == "optimize":
                envelope, status = _optimize_on_shard(service, job, shard)
                reply = {
                    "version": 1,
                    "ok": True,
                    "shard": shard,
                    "status": status,
                    "reply": envelope,
                    "cache_hit": bool(
                        envelope.get("result", {}).get("cache_hit", False)
                        if envelope.get("kind") == "optimize_reply"
                        else False
                    ),
                }
                if job.get("encode_reply"):
                    reply["body"] = json.dumps(
                        envelope, separators=(",", ":")
                    ).encode("utf-8")
            else:
                reply = {
                    "version": 1,
                    "ok": False,
                    "shard": shard,
                    "error": ErrorInfo(
                        f"unknown shard op {op!r}", code="invalid_request"
                    ).to_dict(),
                }
        except Exception as exc:  # belt-and-braces: never kill the loop
            info = ErrorInfo.from_exception(exc)
            reply = {
                "version": 1,
                "ok": False,
                "shard": shard,
                "error": info.to_dict(),
            }
        try:
            conn.send(reply)
        except (OSError, BrokenPipeError):
            break


# ----------------------------------------------------------------------
# The asyncio parent side
# ----------------------------------------------------------------------


def _mp_context():
    """Prefer ``fork`` (keeps parent-registered plugins visible)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class ShardClient:
    """Parent-side handle for one shard process.

    Jobs enter a bounded :class:`asyncio.Queue`; :meth:`submit` raises
    :class:`asyncio.QueueFull` when the shard is saturated, which the
    front door turns into HTTP 429.  One drain task per shard sends jobs
    over the pipe one at a time (pipe send/recv are blocking, so they run
    on a dedicated single-thread executor).  A job that outlives its
    deadline gets the shard killed and respawned (the only way to
    preempt a CPU-bound enumeration); a crashed shard is detected by the
    broken pipe and respawned the same way.  The queue lives in the
    parent, so respawning never drops the jobs waiting behind the one
    that died.
    """

    def __init__(
        self,
        index: int,
        shard_count: int,
        replicas: int,
        service_kwargs: Dict[str, Any],
        warm_cache_path: Optional[str] = None,
        queue_limit: int = 16,
        snapshot_path: Optional[str] = None,
        cooperative_grace: float = 1.0,
    ):
        self.index = index
        self.shard_count = shard_count
        self.replicas = replicas
        self.service_kwargs = dict(service_kwargs)
        self.warm_cache_path = warm_cache_path
        self.snapshot_path = snapshot_path
        self.cooperative_grace = cooperative_grace
        self.queue_limit = queue_limit
        self.restarts = 0
        self.completed = 0
        self.hard_kills_avoided = 0
        self.process = None
        self._conn = None
        self._queue: Optional[asyncio.Queue] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._pipe_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-shard{index}-pipe"
        )
        self._context = _mp_context()
        self._spawn()

    # -- process lifecycle ---------------------------------------------

    def _warm_path(self) -> Optional[str]:
        """Snapshot to warm the next spawn from.

        A snapshot written since startup (periodic task or drain) is
        fresher than the startup warm file, so a respawned shard
        re-warms from it — a deadline recycle no longer means starting
        cold and re-enumerating everything the dead process had cached.
        """
        if self.snapshot_path and os.path.exists(self.snapshot_path):
            return self.snapshot_path
        return self.warm_cache_path

    def _spawn(self) -> None:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=shard_worker_main,
            args=(
                child_conn,
                self.index,
                self.shard_count,
                self.replicas,
                self.service_kwargs,
                self._warm_path(),
            ),
            daemon=True,
            name=f"repro-shard-{self.index}",
        )
        process.start()
        child_conn.close()
        self.process = process
        self._conn = parent_conn

    def _respawn(self) -> None:
        """Kill the current process (if any) and start a fresh one."""
        self.restarts += 1
        try:
            self._conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)
        self._spawn()

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    # -- asyncio side --------------------------------------------------

    def start(self) -> None:
        """Create the queue and drain task (call from inside the loop)."""
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._drain_task = asyncio.get_running_loop().create_task(
            self._drain(), name=f"repro-shard-{self.index}-drain"
        )

    def submit(
        self, job: Dict[str, Any], deadline_seconds: Optional[float] = None
    ) -> "asyncio.Future":
        """Enqueue a job; raises :class:`asyncio.QueueFull` when saturated.

        The deadline clock starts *now* — time spent queued behind other
        jobs counts against it, so a saturated shard sheds work instead
        of serving arbitrarily stale requests.
        """
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        if deadline_seconds is not None:
            job = dict(job)
            job["_deadline_at"] = loop.time() + deadline_seconds
        self._queue.put_nowait((job, future))
        return future

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job, future = await self._queue.get()
            if future.cancelled():
                continue
            payload = await self._roundtrip(loop, job)
            self.completed += 1
            if not future.cancelled():
                future.set_result(payload)

    async def _roundtrip(self, loop, job: Dict[str, Any]) -> Dict[str, Any]:
        deadline_at = job.pop("_deadline_at", None)
        timeout = None
        if deadline_at is not None:
            timeout = deadline_at - loop.time()
            if timeout <= 0:
                return self._local_error(
                    "deadline_exceeded",
                    "request deadline expired while queued for its shard",
                    retryable=True,
                    request_id=job.get("request_id"),
                )
        grace = 0.0
        if (
            timeout is not None
            and self.cooperative_grace > 0
            and job.get("op") == "optimize"
            and isinstance(job.get("request"), dict)
        ):
            # Cooperative deadline: ship the *remaining* budget to the
            # shard so its engine stops itself and salvages a partial
            # plan instead of being killed mid-enumeration.  The grace
            # on top only covers salvage + reply serialization; a shard
            # that misses it too is genuinely hung and gets recycled.
            document = dict(job["request"])
            own = document.get("deadline_seconds")
            document["deadline_seconds"] = (
                timeout if own is None else min(float(own), timeout)
            )
            job = dict(job)
            job["request"] = document
            grace = self.cooperative_grace
        conn = self._conn

        def call():
            conn.send(job)
            return conn.recv()

        pipe_future = loop.run_in_executor(self._pipe_executor, call)
        # The shield keeps a timeout from cancelling the executor future
        # (the thread is stuck in a blocking recv either way); closing
        # the pipe on respawn is what actually unblocks it.
        pipe_future.add_done_callback(_swallow_exception)
        started = loop.time()
        try:
            payload = await asyncio.wait_for(
                asyncio.shield(pipe_future),
                None if timeout is None else timeout + grace,
            )
            if timeout is not None and loop.time() - started > timeout:
                # The engine cooperated inside the grace window; without
                # it this would have been a kill + respawn.
                self.hard_kills_avoided += 1
            return payload
        except asyncio.TimeoutError:
            self._respawn()
            return self._local_error(
                "deadline_exceeded",
                f"shard {self.index} exceeded the request deadline; "
                "the shard was recycled",
                retryable=True,
                request_id=job.get("request_id"),
            )
        except (EOFError, OSError, BrokenPipeError):
            self._respawn()
            return self._local_error(
                "shard_crashed",
                f"shard {self.index} died mid-request and was respawned",
                retryable=True,
                request_id=job.get("request_id"),
            )

    def _local_error(
        self,
        code: str,
        message: str,
        retryable: bool,
        request_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """A payload shaped like a worker reply, minted in the parent."""
        envelope = {
            "version": 1,
            "kind": "error",
            "request_id": request_id,
            "shard": self.index,
            "error": ErrorInfo(message, code=code, retryable=retryable).to_dict(),
        }
        return {
            "version": 1,
            "ok": True,
            "shard": self.index,
            "status": http_status_for_code(code),
            "reply": envelope,
            "cache_hit": False,
            "body": json.dumps(envelope, separators=(",", ":")).encode("utf-8"),
        }

    async def save_snapshot(
        self, timeout_seconds: float = 10.0
    ) -> Optional[int]:
        """Persist this shard's plan cache to its snapshot file.

        Returns the entry count, or ``None`` when no ``snapshot_path``
        is configured or the shard could not take the op (saturated
        queue, crash mid-save).  The file this writes is what
        :meth:`_warm_path` prefers on the next (re)spawn.
        """
        if not self.snapshot_path:
            return None
        try:
            future = self.submit(
                {"op": "save_cache", "path": self.snapshot_path},
                deadline_seconds=timeout_seconds,
            )
        except asyncio.QueueFull:
            return None
        payload = await future
        if payload.get("ok") and "entries" in payload:
            return int(payload["entries"])
        return None

    async def close(self) -> None:
        """Stop the drain task and terminate the process."""
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        try:
            self._conn.send({"op": "shutdown"})
        except (OSError, BrokenPipeError):
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)
        try:
            self._conn.close()
        except OSError:
            pass
        self._pipe_executor.shutdown(wait=False)


def _swallow_exception(future) -> None:
    """Retrieve (and drop) an abandoned pipe future's exception.

    After a deadline kill the orphaned recv errors out once the pipe
    closes; nobody awaits that future anymore, so pull the exception to
    keep asyncio's "exception was never retrieved" warning out of logs.
    """
    if not future.cancelled():
        future.exception()


class ShardPool:
    """All shards of one front door, plus the ring that routes to them."""

    def __init__(
        self,
        shard_count: int,
        service_kwargs: Dict[str, Any],
        queue_limit: int = 16,
        replicas: int = 64,
        warm_cache_path: Optional[str] = None,
        snapshot_path: Optional[str] = None,
        cooperative_grace: float = 1.0,
    ):
        self.ring = ConsistentHashRing(shard_count, replicas)
        self.snapshot_path = snapshot_path
        self.clients = [
            ShardClient(
                index,
                shard_count,
                replicas,
                service_kwargs,
                warm_cache_path=warm_cache_path,
                queue_limit=queue_limit,
                # Per-shard snapshot files: every shard persists only the
                # entries it owns, so concurrent saves never clobber each
                # other; the ring filter on load stays a no-op for the
                # owner and a guard against stale ring geometry.
                snapshot_path=(
                    f"{snapshot_path}.shard{index}" if snapshot_path else None
                ),
                cooperative_grace=cooperative_grace,
            )
            for index in range(shard_count)
        ]

    def __len__(self) -> int:
        return len(self.clients)

    def start(self) -> None:
        for client in self.clients:
            client.start()

    def client_for(self, signature: str) -> ShardClient:
        return self.clients[self.ring.owner(signature)]

    async def snapshot_all(self) -> Dict[int, Optional[int]]:
        """Persist every shard's cache; returns entries saved per shard."""
        counts = await asyncio.gather(
            *(client.save_snapshot() for client in self.clients),
            return_exceptions=True,
        )
        return {
            client.index: (None if isinstance(count, BaseException) else count)
            for client, count in zip(self.clients, counts)
        }

    async def close(self) -> None:
        await asyncio.gather(
            *(client.close() for client in self.clients),
            return_exceptions=True,
        )

"""Run-stats observability: counters and latency histograms.

Everything here is in-process and dependency-free: monotonic counters
plus a bounded-window latency recorder per algorithm, all guarded by one
lock so a multi-threaded :class:`~repro.service.OptimizerService` can
record from its worker pool.  ``snapshot()`` returns plain dicts that are
``json.dumps``-able as-is (the CLI's ``serve-stats`` subcommand does
exactly that).
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = ["LatencyHistogram", "ServiceMetrics"]

#: Samples kept per histogram; percentiles describe the most recent
#: window once a histogram overflows (count/total keep growing).
DEFAULT_MAX_SAMPLES = 8192


class LatencyHistogram:
    """Latency recorder with nearest-rank percentile queries.

    Stores up to ``max_samples`` most-recent observations in a ring
    buffer; ``count`` and ``total`` are cumulative over the histogram's
    lifetime, so throughput math stays exact even after the window rolls.
    Not thread-safe on its own — :class:`ServiceMetrics` serializes
    access.
    """

    __slots__ = ("_samples", "_count", "_total", "_max")

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES):
        self._samples: Deque[float] = deque(maxlen=max_samples)
        self._count = 0
        self._total = 0.0
        self._max = 0.0

    def record(self, seconds: float) -> None:
        """Record one latency observation (in seconds)."""
        self._samples.append(seconds)
        self._count += 1
        self._total += seconds
        if seconds > self._max:
            self._max = seconds

    @property
    def count(self) -> int:
        """Total observations ever recorded."""
        return self._count

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile over the retained window, in seconds."""
        if not self._samples:
            return None
        ordered: List[float] = sorted(self._samples)
        rank = max(0, math.ceil(p / 100.0 * len(ordered)) - 1)
        return ordered[min(rank, len(ordered) - 1)]

    def snapshot(self) -> Dict[str, float]:
        """Return count/mean/p50/p95/p99/max in milliseconds."""
        if self._count == 0:
            return {"count": 0}
        ordered = sorted(self._samples)

        def rank(p: float) -> float:
            idx = max(0, math.ceil(p / 100.0 * len(ordered)) - 1)
            return ordered[min(idx, len(ordered) - 1)] * 1e3

        return {
            "count": self._count,
            "mean_ms": self._total / self._count * 1e3,
            "p50_ms": rank(50),
            "p95_ms": rank(95),
            "p99_ms": rank(99),
            "max_ms": self._max * 1e3,
        }


class ServiceMetrics:
    """Thread-safe counters and per-algorithm latency histograms.

    One instance lives inside each :class:`~repro.service.OptimizerService`;
    ``observe`` is the single write path, ``snapshot`` the single read
    path.  Counters are monotonic — ``reset()`` starts a new observation
    epoch rather than mutating in place, which keeps concurrent readers
    coherent.
    """

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES):
        self._lock = threading.Lock()
        self._max_samples = max_samples
        self._totals: Dict[str, int] = {
            "requests": 0,
            "errors": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "timeouts": 0,
            "fallbacks": 0,
            "degraded": 0,
            "retries": 0,
        }
        self._algorithms: Dict[str, Dict] = {}

    def _algorithm_slot(self, algorithm: str) -> Dict:
        slot = self._algorithms.get(algorithm)
        if slot is None:
            slot = {
                "count": 0,
                "errors": 0,
                "cache_hits": 0,
                "timeouts": 0,
                "fallbacks": 0,
                "degraded": 0,
                "retries": 0,
                "histogram": LatencyHistogram(self._max_samples),
            }
            self._algorithms[algorithm] = slot
        return slot

    def observe(
        self,
        algorithm: str,
        seconds: float,
        cache_hit: bool = False,
        error: bool = False,
        timeout: bool = False,
        fallback: bool = False,
        degraded: bool = False,
        retries: int = 0,
    ) -> None:
        """Record one request outcome under the given algorithm label.

        ``timeout`` marks a request that exceeded its deadline; it is
        orthogonal to ``error``/``fallback`` because a timed-out request
        either failed (``error=True``) or was served a heuristic plan
        (``fallback=True``) — both still count one timeout.  ``degraded``
        marks a request served from a ladder rung instead of the exact
        enumerator (admission budget or open breaker); ``retries`` adds
        the extra worker attempts this request consumed.
        """
        with self._lock:
            self._totals["requests"] += 1
            slot = self._algorithm_slot(algorithm)
            slot["count"] += 1
            slot["histogram"].record(seconds)
            if timeout:
                self._totals["timeouts"] += 1
                slot["timeouts"] += 1
            if fallback:
                self._totals["fallbacks"] += 1
                slot["fallbacks"] += 1
            if degraded:
                self._totals["degraded"] += 1
                slot["degraded"] += 1
            if retries:
                self._totals["retries"] += retries
                slot["retries"] += retries
            if error:
                self._totals["errors"] += 1
                slot["errors"] += 1
            elif cache_hit:
                self._totals["cache_hits"] += 1
                slot["cache_hits"] += 1
            else:
                self._totals["cache_misses"] += 1

    def snapshot(self) -> Dict:
        """Return a JSON-ready copy of all counters and histograms."""
        with self._lock:
            return {
                "totals": dict(self._totals),
                "algorithms": {
                    name: {
                        "count": slot["count"],
                        "errors": slot["errors"],
                        "cache_hits": slot["cache_hits"],
                        "timeouts": slot["timeouts"],
                        "fallbacks": slot["fallbacks"],
                        "degraded": slot["degraded"],
                        "retries": slot["retries"],
                        "latency": slot["histogram"].snapshot(),
                    }
                    for name, slot in sorted(self._algorithms.items())
                },
            }

    def reset(self) -> None:
        """Drop all counters and histograms (new observation epoch)."""
        with self._lock:
            for key in self._totals:
                self._totals[key] = 0
            self._algorithms.clear()

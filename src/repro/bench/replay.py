"""Seeded, deterministic multi-tenant workload replay harness.

The serving stack has eight layers of machinery — plan cache,
degradation ladder, circuit breakers, shards, admission control — but
the ``BENCH_*.json`` gates only probe them one at a time.  This module
drives them *together*: it synthesizes a multi-tenant query stream
(chain/star/cycle/clique shapes plus TPC-H/SSB/JOB-lite queries from
:mod:`repro.workloads`, Zipf-skewed tenant popularity, exponential
interarrivals) against either an in-process
:class:`~repro.service.core.OptimizerService` or a live front door, and
records a per-request event log that the figure registry
(:mod:`repro.bench.figures`) turns into a fleet dashboard.

Determinism is a contract, not an accident: with ``timing="virtual"``
(the default) every event field — including the latency proxy — derives
from seeded RNG state and deterministic optimizer counters, so the same
seed and config produce a byte-identical event log and ``REPLAY.json``.
``timing="wall"`` swaps the proxy for measured milliseconds when you
want real numbers and can tolerate run-to-run noise.

Mid-stream the harness drifts catalog statistics: each affected query's
``stats_epoch`` is bumped and its catalog rebuilt with perturbed
numbers.  Because :func:`repro.service.core.request_signature` mixes a
nonzero epoch into the cache key, the drift *must* produce cache misses
— the harness counts ``drift_invalidations`` (epoch bump changed the
signature, orphaning the cached plan) and ``stale_plan_serves`` (a
cache hit whose entry was stored under an older epoch, which the
stats-epoch fix makes structurally impossible) and the replay gate
asserts the latter stays zero.  ``sub_quantum_drift=True`` reproduces
the original bug's conditions: statistics move by less than a rounding
quantum, so *only* the epoch separates old from new.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import time
import urllib.error
import urllib.request
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.catalog.statistics import Catalog, Relation
from repro.catalog.workload import attach_random_statistics
from repro.graph.shapes import make_shape
from repro.optimizer.api import OptimizationRequest

__all__ = [
    "ReplayConfig",
    "ReplayQuery",
    "build_stream",
    "perturb_catalog",
    "run_replay",
    "summarize",
    "write_outputs",
    "percentile",
    "main",
]

#: Phases of the stream, in order: cold-cache ``warmup``, the steady
#: Zipf-``skewed`` window the hit-rate gate measures, and ``post_drift``
#: after the mid-stream statistics refresh.
PHASES = ("warmup", "skewed", "post_drift")


@dataclass
class ReplayConfig:
    """Everything that shapes a replay stream; hashable into the report."""

    seed: int = 20110411
    tenants: int = 3
    requests: int = 400
    queries_per_tenant: int = 6
    #: Zipf exponent for tenant popularity: tenant ``i`` has weight
    #: ``1 / (i + 1) ** zipf_s``.
    zipf_s: float = 1.2
    #: Mean arrival rate in requests per (virtual) second.
    arrival_rate: float = 200.0
    shapes: Sequence[str] = ("chain", "star", "cycle", "clique")
    min_relations: int = 4
    max_relations: int = 9
    #: Cliques get their own range so the admission estimate pushes a
    #: visible slice of traffic onto the dpconv fast-exact rung.
    clique_min: int = 8
    clique_max: int = 12
    #: Fraction of each tenant's pool drawn from the named TPC-H / SSB /
    #: JOB-lite catalogs instead of synthetic shapes.
    named_fraction: float = 0.25
    #: Stream positions (fractions) where warmup ends and drift lands.
    warmup_fraction: float = 0.15
    drift_fraction_of_stream: float = 0.6
    #: Fraction of each tenant's pool whose statistics drift.
    drift_query_fraction: float = 0.5
    #: Relative perturbation applied by the drift; with
    #: ``sub_quantum_drift`` the magnitude is ignored and statistics move
    #: by 1 part in 10^9 — far below the 4-significant-digit signature
    #: quantum, so only ``stats_epoch`` separates old from new.
    drift_magnitude: float = 0.05
    sub_quantum_drift: bool = False
    #: "virtual" = deterministic latency proxy; "wall" = measured ms.
    timing: str = "virtual"
    #: Shard count used to attribute events in in-process mode (the same
    #: consistent-hash ring the front door routes with).
    virtual_shards: int = 4
    #: Admission budget for the in-process service, chosen so clique
    #: queries above ``clique_min`` degrade to the dpconv rung.
    max_ccp_budget: Optional[int] = 20_000

    def to_dict(self) -> Dict[str, Any]:
        document = asdict(self)
        document["shapes"] = list(self.shapes)
        return document


@dataclass
class ReplayQuery:
    """One pooled query: identity, current catalog, and drift state."""

    tenant: str
    qid: str
    shape: str
    n: int
    catalog: Catalog
    epoch: int = 0
    drifts: bool = False
    last_served_epoch: Optional[int] = None
    last_signature: Optional[str] = None


def _named_query_pool(max_relations: int) -> List[Tuple[str, Catalog]]:
    """All named workload catalogs small enough for the stream, sorted."""
    from repro import workloads

    pool: List[Tuple[str, Catalog]] = []
    sources = [
        ("tpch", workloads.tpch_query_names(), workloads.tpch_query),
        ("ssb", workloads.ssb_query_names(), workloads.ssb_query),
        ("job", workloads.job_query_names(), workloads.job_query),
    ]
    for family, names, build in sources:
        for name in sorted(names):
            catalog = build(name)
            if catalog.graph.n_vertices <= max_relations:
                pool.append((f"{family}:{name}", catalog))
    return pool


def perturb_catalog(
    catalog: Catalog, rng: random.Random, magnitude: float, sub_quantum: bool
) -> Catalog:
    """Return a drifted copy of ``catalog`` (catalogs are immutable).

    ``sub_quantum=True`` nudges every statistic by one part in 10^9 —
    real drift, but invisible to the 4-significant-digit signature
    rounding.  Otherwise each value moves by a seeded relative delta up
    to ``magnitude``.
    """

    def factor() -> float:
        if sub_quantum:
            return 1.0 + 1e-9
        return 1.0 + rng.uniform(-magnitude, magnitude)

    relations = [
        Relation(name=rel.name, cardinality=max(rel.cardinality * factor(), 1e-6))
        for rel in catalog.relations
    ]
    selectivities = {
        edge: min(max(catalog.selectivity(*edge) * factor(), 1e-12), 1.0)
        for edge in catalog.graph.edges
    }
    return Catalog(catalog.graph, relations, selectivities)


def build_stream(
    config: ReplayConfig,
) -> Tuple[List[ReplayQuery], List[Dict[str, Any]]]:
    """Synthesize the query pool and the arrival schedule.

    Returns ``(queries, schedule)`` where ``schedule`` rows carry
    ``{"seq", "t", "query_index"}``.  Everything is derived from
    ``config.seed`` through independent child RNGs, so pool and
    schedule are reproducible independently of each other.
    """
    rng = random.Random(config.seed)
    named = _named_query_pool(config.max_relations)
    queries: List[ReplayQuery] = []
    for t in range(config.tenants):
        tenant = f"t{t}"
        child = random.Random(rng.randrange(2**31))
        for q in range(config.queries_per_tenant):
            qid = f"{tenant}/q{q}"
            if named and child.random() < config.named_fraction:
                label, catalog = named[child.randrange(len(named))]
                queries.append(
                    ReplayQuery(
                        tenant=tenant,
                        qid=qid,
                        shape=label,
                        n=catalog.graph.n_vertices,
                        catalog=catalog,
                    )
                )
                continue
            shape = config.shapes[q % len(config.shapes)]
            if shape == "clique":
                n = child.randint(config.clique_min, config.clique_max)
            else:
                n = child.randint(config.min_relations, config.max_relations)
            graph = make_shape(shape, n)
            catalog = attach_random_statistics(
                graph, seed=child.randrange(2**31)
            )
            queries.append(
                ReplayQuery(
                    tenant=tenant, qid=qid, shape=shape, n=n, catalog=catalog
                )
            )

    # Mark which queries drift (seeded, at least one overall).
    drift_rng = random.Random(rng.randrange(2**31))
    per_tenant = config.queries_per_tenant
    for t in range(config.tenants):
        pool = queries[t * per_tenant : (t + 1) * per_tenant]
        k = max(1, int(round(len(pool) * config.drift_query_fraction)))
        for query in drift_rng.sample(pool, k):
            query.drifts = True

    weights = [1.0 / (t + 1) ** config.zipf_s for t in range(config.tenants)]
    schedule: List[Dict[str, Any]] = []
    clock = 0.0
    arrival_rng = random.Random(rng.randrange(2**31))
    pick_rng = random.Random(rng.randrange(2**31))
    for seq in range(config.requests):
        clock += arrival_rng.expovariate(config.arrival_rate)
        tenant_index = pick_rng.choices(
            range(config.tenants), weights=weights
        )[0]
        query_index = tenant_index * per_tenant + pick_rng.randrange(per_tenant)
        schedule.append(
            {"seq": seq, "t": round(clock, 6), "query_index": query_index}
        )
    return queries, schedule


def _phase_of(seq: int, config: ReplayConfig) -> str:
    if seq < int(config.requests * config.warmup_fraction):
        return "warmup"
    if seq < int(config.requests * config.drift_fraction_of_stream):
        return "skewed"
    return "post_drift"


def _apply_drift(
    queries: List[ReplayQuery], config: ReplayConfig, seed: int
) -> int:
    """Bump epochs and rebuild catalogs for every drifting query."""
    rng = random.Random(seed)
    drifted = 0
    for query in queries:
        if not query.drifts:
            continue
        query.catalog = perturb_catalog(
            query.catalog,
            rng,
            config.drift_magnitude,
            config.sub_quantum_drift,
        )
        query.epoch += 1
        drifted += 1
    return drifted


def _virtual_latency_ms(cache_hit: bool, work_units: float) -> float:
    """Deterministic latency proxy: a fixed floor plus optimizer work."""
    if cache_hit:
        return 0.05
    return round(0.05 + work_units / 1000.0, 6)


def _event_from_result(
    seq: int,
    arrival: float,
    query: ReplayQuery,
    phase: str,
    cache_hit: bool,
    signature: Optional[str],
    details: Dict[str, Any],
    algorithm: str,
    work_units: float,
    wall_ms: float,
    shard: Optional[int],
    breaker_open: bool,
    timing: str,
    error: Optional[str] = None,
) -> Dict[str, Any]:
    if error is not None:
        rung = "error"
    elif cache_hit:
        rung = "cached"
    else:
        rung = details.get("rung") or "exact"
    salvage = (details.get("salvage") or {}).get("memo_solved_fraction")
    return {
        "seq": seq,
        "t": arrival,
        "tenant": query.tenant,
        "qid": query.qid,
        "shape": query.shape,
        "n": query.n,
        "phase": phase,
        "epoch": query.epoch,
        "algorithm": algorithm,
        "rung": rung,
        "cache_hit": bool(cache_hit),
        "latency_ms": (
            _virtual_latency_ms(cache_hit, work_units)
            if timing == "virtual"
            else round(wall_ms, 3)
        ),
        "work_units": work_units,
        "salvage": salvage,
        "breaker_open": breaker_open,
        "shard": shard,
        "signature": signature[:16] if signature else None,
        "error": error,
    }


def _track_staleness(
    event: Dict[str, Any],
    query: ReplayQuery,
    signature: Optional[str],
    cache_hit: bool,
    stored_epoch: Dict[str, int],
) -> None:
    """Annotate ``event`` with stale/invalidated flags and update state.

    * ``invalidated`` — first serve after an epoch bump whose signature
      differs from the previous one: the drift orphaned a cache entry.
    * ``stale`` — a cache hit served from an entry stored under an older
      epoch: the bug the ``stats_epoch`` signature field eliminates.
    """
    invalidated = False
    stale = False
    if signature is not None:
        if (
            query.last_served_epoch is not None
            and query.last_served_epoch != query.epoch
            and query.last_signature is not None
        ):
            invalidated = signature != query.last_signature
        if cache_hit:
            stale = stored_epoch.get(signature, query.epoch) != query.epoch
        else:
            stored_epoch[signature] = query.epoch
        query.last_served_epoch = query.epoch
        query.last_signature = signature
    event["invalidated"] = invalidated
    event["stale"] = stale


def _run_in_process(
    config: ReplayConfig,
    queries: List[ReplayQuery],
    schedule: List[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    from repro.service.core import OptimizerService
    from repro.service.resilience import BREAKER_CLOSED, ResilienceConfig
    from repro.service.sharding import ConsistentHashRing

    service = OptimizerService(
        default_algorithm="auto",
        tracing=False,
        resilience=ResilienceConfig(
            max_ccp_budget=config.max_ccp_budget,
            # The anytime rung salvages by wall clock, which would leak
            # real time into the event log; the remaining rungs are
            # fully deterministic.
            anytime_enabled=False,
        ),
    )
    ring = ConsistentHashRing(config.virtual_shards)
    drift_seq = int(config.requests * config.drift_fraction_of_stream)
    drift_seed = random.Random(config.seed ^ 0x5EED).randrange(2**31)
    stored_epoch: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    drifted_queries = 0
    for row in schedule:
        seq = row["seq"]
        if seq == drift_seq:
            drifted_queries = _apply_drift(queries, config, drift_seed)
        query = queries[row["query_index"]]
        request = OptimizationRequest(
            query=query.catalog,
            algorithm="auto",
            stats_epoch=query.epoch,
            tag=query.qid,
        )
        started = time.perf_counter()
        error = None
        try:
            result = service.optimize(request)
        except Exception as exc:  # typed service errors become events
            wall_ms = (time.perf_counter() - started) * 1000.0
            event = _event_from_result(
                seq,
                row["t"],
                query,
                _phase_of(seq, config),
                cache_hit=False,
                signature=None,
                details={},
                algorithm="auto",
                work_units=0.0,
                wall_ms=wall_ms,
                shard=None,
                breaker_open=False,
                timing=config.timing,
                error=type(exc).__name__,
            )
            _track_staleness(event, query, None, False, stored_epoch)
            events.append(event)
            continue
        wall_ms = (time.perf_counter() - started) * 1000.0
        work_units = float(result.cost_evaluations + result.memo_entries)
        breaker_open = any(
            slot["state"] != BREAKER_CLOSED
            for slot in service.breaker.snapshot().values()
        )
        event = _event_from_result(
            seq,
            row["t"],
            query,
            _phase_of(seq, config),
            cache_hit=result.cache_hit,
            signature=result.signature,
            details=result.details,
            algorithm=result.algorithm,
            work_units=work_units,
            wall_ms=wall_ms,
            shard=ring.owner(result.signature) if result.signature else None,
            breaker_open=breaker_open,
            timing=config.timing,
            error=error,
        )
        _track_staleness(
            event, query, result.signature, result.cache_hit, stored_epoch
        )
        events.append(event)
    cache_stats = service.cache.stats()
    fleet = {
        "mode": "in-process",
        "shards": [
            {"shard": s, "hard_kills_avoided": 0, "restarts": 0}
            for s in range(config.virtual_shards)
        ],
        "cache": {
            "entries": cache_stats.get("entries", cache_stats.get("size")),
            "hits": cache_stats.get("hits"),
            "misses": cache_stats.get("misses"),
        },
        "drifted_queries": drifted_queries,
    }
    return events, fleet


def _http_post(
    host: str, port: int, path: str, payload: Dict[str, Any], timeout: float
) -> Tuple[int, Dict[str, Any]]:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        try:
            return error.code, json.loads(error.read())
        except Exception:
            return error.code, {}


def _run_against_frontdoor(
    config: ReplayConfig,
    queries: List[ReplayQuery],
    schedule: List[Dict[str, Any]],
    host: str,
    port: int,
    timeout: float = 60.0,
) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    from repro import serialize

    drift_seq = int(config.requests * config.drift_fraction_of_stream)
    drift_seed = random.Random(config.seed ^ 0x5EED).randrange(2**31)
    stored_epoch: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    drifted_queries = 0
    for row in schedule:
        seq = row["seq"]
        if seq == drift_seq:
            drifted_queries = _apply_drift(queries, config, drift_seed)
        query = queries[row["query_index"]]
        request = OptimizationRequest(
            query=query.catalog,
            algorithm="auto",
            stats_epoch=query.epoch,
            tag=query.qid,
        )
        envelope = {
            "version": 1,
            "request_id": f"replay-{seq}",
            "tenant": query.tenant,
            "request": serialize.request_to_dict(request),
        }
        started = time.perf_counter()
        status, reply = _http_post(
            host, port, "/v1/optimize", envelope, timeout
        )
        wall_ms = (time.perf_counter() - started) * 1000.0
        if status != 200 or reply.get("kind") != "optimize_reply":
            code = (reply.get("error") or {}).get("code", f"http_{status}")
            event = _event_from_result(
                seq,
                row["t"],
                query,
                _phase_of(seq, config),
                cache_hit=False,
                signature=None,
                details={},
                algorithm="auto",
                work_units=0.0,
                wall_ms=wall_ms,
                shard=reply.get("shard"),
                breaker_open=False,
                timing=config.timing,
                error=code,
            )
            _track_staleness(event, query, None, False, stored_epoch)
            events.append(event)
            continue
        result = reply.get("result") or {}
        details = result.get("details") or {}
        signature = result.get("signature")
        cache_hit = bool(result.get("cache_hit"))
        work_units = float(
            (result.get("cost_evaluations") or 0)
            + (result.get("memo_entries") or 0)
        )
        event = _event_from_result(
            seq,
            row["t"],
            query,
            _phase_of(seq, config),
            cache_hit=cache_hit,
            signature=signature,
            details=details,
            algorithm=result.get("algorithm", "auto"),
            work_units=work_units,
            wall_ms=wall_ms,
            shard=reply.get("shard"),
            breaker_open=False,
            timing=config.timing,
        )
        _track_staleness(event, query, signature, cache_hit, stored_epoch)
        events.append(event)

    fleet: Dict[str, Any] = {
        "mode": "frontdoor",
        "shards": [],
        "drifted_queries": drifted_queries,
    }
    try:
        with urllib.request.urlopen(
            f"http://{host}:{port}/v1/stats", timeout=timeout
        ) as response:
            stats = json.loads(response.read())
        for shard in stats.get("shards", []):
            fleet["shards"].append(
                {
                    "shard": shard.get("shard"),
                    "hard_kills_avoided": shard.get("hard_kills_avoided", 0),
                    "restarts": shard.get("restarts", 0),
                }
            )
        fleet["frontdoor"] = stats.get("frontdoor")
    except Exception:
        fleet["stats_unavailable"] = True
    return events, fleet


def run_replay(
    config: ReplayConfig,
    host: Optional[str] = None,
    port: Optional[int] = None,
) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Run one replay; returns ``(events, summary)``.

    With ``host``/``port`` the stream is POSTed to a live front door;
    otherwise it drives a fresh in-process service.
    """
    queries, schedule = build_stream(config)
    if host is not None and port is not None:
        events, fleet = _run_against_frontdoor(
            config, queries, schedule, host, port
        )
    else:
        events, fleet = _run_in_process(config, queries, schedule)
    return events, summarize(events, config, fleet)


def percentile(samples: Sequence[float], p: float) -> float:
    """Nearest-rank percentile; deterministic for a fixed sample order."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, int(round(p * (len(ordered) - 1)))))
    return ordered[index]


def _latency_stats(events: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    samples = [e["latency_ms"] for e in events]
    return {
        "p50_ms": round(percentile(samples, 0.50), 6),
        "p95_ms": round(percentile(samples, 0.95), 6),
        "p99_ms": round(percentile(samples, 0.99), 6),
    }


def _rung_mix(events: Sequence[Dict[str, Any]]) -> Dict[str, int]:
    mix: Dict[str, int] = {}
    for event in events:
        mix[event["rung"]] = mix.get(event["rung"], 0) + 1
    return dict(sorted(mix.items()))


def summarize(
    events: List[Dict[str, Any]],
    config: ReplayConfig,
    fleet: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Fold the event log into the machine-readable ``REPLAY.json`` body."""
    from repro.bench.report import collect_bench_reports

    phases: Dict[str, Any] = {}
    for phase in PHASES:
        rows = [e for e in events if e["phase"] == phase]
        hits = sum(1 for e in rows if e["cache_hit"])
        phases[phase] = {
            "requests": len(rows),
            "cache_hits": hits,
            "hit_rate": round(hits / len(rows), 6) if rows else None,
            "rung_mix": _rung_mix(rows),
            "latency": _latency_stats(rows),
            "breaker_trips": sum(1 for e in rows if e["breaker_open"]),
            "stale_plan_serves": sum(1 for e in rows if e["stale"]),
            "drift_invalidations": sum(1 for e in rows if e["invalidated"]),
            "errors": sum(1 for e in rows if e["error"]),
        }
    tenants: Dict[str, Any] = {}
    for event in events:
        slot = tenants.setdefault(
            event["tenant"], {"requests": 0, "cache_hits": 0}
        )
        slot["requests"] += 1
        slot["cache_hits"] += int(event["cache_hit"])
    for name, slot in tenants.items():
        slot["share"] = round(slot["requests"] / max(len(events), 1), 6)
        slot["hit_rate"] = (
            round(slot["cache_hits"] / slot["requests"], 6)
            if slot["requests"]
            else None
        )
    total_hits = sum(1 for e in events if e["cache_hit"])
    return {
        "kind": "replay_report",
        "version": 1,
        "config": config.to_dict(),
        "totals": {
            "requests": len(events),
            "cache_hits": total_hits,
            "hit_rate": (
                round(total_hits / len(events), 6) if events else None
            ),
            "stale_plan_serves": sum(1 for e in events if e["stale"]),
            "drift_invalidations": sum(1 for e in events if e["invalidated"]),
            "breaker_trips": sum(1 for e in events if e["breaker_open"]),
            "errors": sum(1 for e in events if e["error"]),
            "latency": _latency_stats(events),
        },
        "phases": phases,
        "tenants": dict(sorted(tenants.items())),
        "rung_mix": _rung_mix(events),
        "fleet": fleet or {},
        "bench_reports": sorted(collect_bench_reports()),
    }


def write_outputs(
    events: List[Dict[str, Any]],
    summary: Dict[str, Any],
    outdir: str,
) -> Dict[str, Any]:
    """Write the event log, ``REPLAY.json``, and every registered figure.

    Returns a manifest ``{"events": path, "report": path, "figures":
    {name: {"svg": path, "png": path | None}}}``.
    """
    from repro.bench.figures import render_all

    os.makedirs(outdir, exist_ok=True)
    events_path = os.path.join(outdir, "replay_events.jsonl")
    with open(events_path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(
                json.dumps(event, sort_keys=True, separators=(",", ":"))
            )
            handle.write("\n")
    report_path = os.path.join(outdir, "REPLAY.json")
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    figures = render_all(events, summary, outdir)
    return {"events": events_path, "report": report_path, "figures": figures}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli replay",
        description="Replay a seeded multi-tenant query stream and render "
        "the fleet dashboard.",
    )
    parser.add_argument("--seed", type=int, default=20110411)
    parser.add_argument("--requests", type=int, default=400)
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--queries-per-tenant", type=int, default=6)
    parser.add_argument("--zipf", type=float, default=1.2)
    parser.add_argument(
        "--timing",
        choices=["virtual", "wall"],
        default="virtual",
        help="virtual = deterministic latency proxy (byte-stable runs); "
        "wall = measured milliseconds",
    )
    parser.add_argument(
        "--sub-quantum-drift",
        action="store_true",
        help="drift statistics below the signature rounding quantum "
        "(reproduces the stale-plan bug's conditions)",
    )
    parser.add_argument("--outdir", default="replay_out")
    parser.add_argument(
        "--host", default=None, help="drive a live front door instead"
    )
    parser.add_argument("--port", type=int, default=None)
    args = parser.parse_args(argv)

    config = ReplayConfig(
        seed=args.seed,
        requests=args.requests,
        tenants=args.tenants,
        queries_per_tenant=args.queries_per_tenant,
        zipf_s=args.zipf,
        timing=args.timing,
        sub_quantum_drift=args.sub_quantum_drift,
    )
    host, port = args.host, args.port
    if (host is None) != (port is None):
        parser.error("--host and --port must be given together")
    events, summary = run_replay(config, host=host, port=port)
    manifest = write_outputs(events, summary, args.outdir)

    totals = summary["totals"]
    skewed = summary["phases"]["skewed"]
    print(
        f"replay: {totals['requests']} requests, "
        f"hit rate {totals['hit_rate']:.2%} "
        f"(skewed phase {skewed['hit_rate']:.2%}), "
        f"{totals['drift_invalidations']} drift invalidations, "
        f"{totals['stale_plan_serves']} stale plan serves, "
        f"{totals['errors']} errors"
    )
    print(f"wrote {manifest['report']}")
    print(f"wrote {manifest['events']}")
    for name, paths in sorted(manifest["figures"].items()):
        print(f"wrote {paths['svg']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

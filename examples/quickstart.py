#!/usr/bin/env python
"""Quickstart: optimize the join order of an 8-relation chain query.

Demonstrates the three-step public API:

1. build a query graph (relations + join predicates),
2. attach statistics (cardinalities + selectivities),
3. optimize with the paper's TDMinCutBranch and inspect the plan.

Run:  python examples/quickstart.py
"""

from repro import attach_random_statistics, chain_graph, optimize_query


def main() -> None:
    # A chain query: R0 ⋈ R1 ⋈ ... ⋈ R7, each join predicate linking
    # consecutive relations (think: a pipeline of foreign-key joins).
    graph = chain_graph(8)
    catalog = attach_random_statistics(graph, seed=42)

    print("Relations:")
    for relation in catalog.relations:
        print(f"  {relation.name:4s} |{relation.name}| = {relation.cardinality:,.0f}")
    print("Join edges:", ", ".join(f"R{u}-R{v}" for u, v in graph.edges))
    print()

    result = optimize_query(catalog, algorithm="tdmincutbranch")

    print(f"optimal C_out cost : {result.cost:,.0f}")
    print(f"join expression    : {result.plan.to_expression()}")
    print(f"bushy?             : {'no (left-deep)' if result.plan.is_left_deep() else 'yes'}")
    print(f"memo entries       : {result.memo_entries}")
    print(f"ccps enumerated    : {result.details['ccps_emitted']}")
    print(f"optimization time  : {result.elapsed_seconds * 1e3:.2f} ms")
    print()
    print("operator tree:")
    print(result.plan.pretty())


if __name__ == "__main__":
    main()

"""EXPLAIN-style reports: what the optimizer did and why.

:func:`explain` runs one algorithm over a catalog and renders a
self-contained report — query shape, search-space sizes, the winning
plan as an operator tree, and the enumeration counters that the paper's
complexity analysis is about.  :func:`explain_comparison` races several
algorithms and tabulates their (identical) costs and (differing)
overheads, the per-query view of the paper's Tables IV/V.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.catalog.statistics import Catalog
from repro.cost.base import CostModel
from repro.enumeration.counting import (
    count_ccps,
    count_connected_subgraphs,
)
from repro.optimizer.api import ALGORITHMS, optimize_query

__all__ = ["explain", "explain_comparison"]

#: Above this size exhaustive search-space counting is skipped in reports.
_COUNTING_LIMIT = 14


def explain(
    catalog: Catalog,
    algorithm: str = "tdmincutbranch",
    cost_model: Optional[CostModel] = None,
    enable_pruning: bool = False,
) -> str:
    """Return a multi-line EXPLAIN report for one optimization run."""
    graph = catalog.graph
    result = optimize_query(
        catalog,
        algorithm=algorithm,
        cost_model=cost_model,
        enable_pruning=enable_pruning,
    )
    lines: List[str] = []
    lines.append(f"query: {graph.n_vertices} relations, {graph.n_edges} join "
                 f"edges, shape={graph.shape_name()}")
    if graph.n_vertices <= _COUNTING_LIMIT:
        lines.append(
            f"search space: {count_connected_subgraphs(graph)} connected "
            f"subgraphs, {count_ccps(graph)} csg-cmp-pairs"
        )
    lines.append(f"algorithm: {algorithm}"
                 + (" (+branch-and-bound pruning)" if enable_pruning else ""))
    lines.append(f"optimal cost: {result.cost:.6g}")
    lines.append(
        f"work: {result.memo_entries} memo entries, "
        f"{result.cardinality_estimations} cardinality estimations, "
        f"{result.cost_evaluations} cost evaluations, "
        f"{result.elapsed_seconds * 1e3:.2f} ms"
    )
    for key, value in sorted(result.details.items()):
        lines.append(f"  {key}: {value}")
    lines.append("plan:")
    lines.append(result.plan.pretty(indent=1))
    return "\n".join(lines)


def explain_comparison(
    catalog: Catalog,
    algorithms: Optional[Iterable[str]] = None,
    cost_model: Optional[CostModel] = None,
) -> str:
    """Return a per-query comparison table across algorithms.

    All rows must (and are asserted to) agree on the optimal cost; the
    interesting columns are the enumeration overheads.
    """
    names = list(algorithms) if algorithms is not None else sorted(ALGORITHMS)
    rows = []
    reference_cost = None
    for name in names:
        result = optimize_query(catalog, algorithm=name, cost_model=cost_model)
        if reference_cost is None:
            reference_cost = result.cost
        elif abs(result.cost - reference_cost) > 1e-9 * max(reference_cost, 1.0):
            raise AssertionError(
                f"algorithm {name} found cost {result.cost}, expected "
                f"{reference_cost} — enumeration bug"
            )
        rows.append(
            (
                name,
                result.elapsed_seconds * 1e3,
                result.memo_entries,
                result.cost_evaluations,
            )
        )
    rows.sort(key=lambda row: row[1])
    width = max(len(name) for name, *_ in rows)
    lines = [
        f"optimal cost {reference_cost:.6g} — all "
        f"{len(rows)} algorithms agree; overheads:"
    ]
    for name, ms, memo, evals in rows:
        lines.append(
            f"  {name.ljust(width)}  {ms:9.3f} ms   memo={memo}  "
            f"cost_evals={evals}"
        )
    return "\n".join(lines)

"""Command-line experiment runner: regenerate the paper's tables/figures.

Usage::

    python -m repro.bench.report --all                 # every experiment
    python -m repro.bench.report -e fig09 -e table1    # selected ones
    python -m repro.bench.report --all --scale full    # paper-sized runs
    python -m repro.bench.report --all -o results.txt  # also write a file
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.bench.experiments import EXPERIMENTS, run_experiment

__all__ = [
    "main",
    "bench_output_path",
    "bench_environment",
    "collect_bench_reports",
    "write_bench_report",
]


def bench_output_path(name: str) -> str:
    """Return the canonical path for a ``BENCH_*.json`` gate report.

    Every benchmark gate writes through this helper so the whole perf
    trajectory lands in one directory: ``$REPRO_BENCH_DIR`` when set,
    otherwise the current working directory (the repo root under
    ``make``).  ``name`` may be a bare gate name (``frontdoor``) or a
    full filename (``BENCH_frontdoor.json``).
    """
    if not name.endswith(".json"):
        name = f"BENCH_{name}.json"
    base = os.environ.get("REPRO_BENCH_DIR") or os.getcwd()
    return os.path.join(base, name)


def bench_environment() -> Dict:
    """Describe the host a benchmark ran on, for the gate report.

    Numbers in ``BENCH_*.json`` are only comparable across runs when the
    execution substrate is known — above all which enumeration backend
    (pure python, numpy batch-DP, compiled C) actually served the hot
    loop.  Every gate writer stamps this stanza via
    :func:`write_bench_report` so a perf regression can immediately be
    told apart from a host that silently lost its numpy or C toolchain.
    """
    import platform

    from repro.optimizer.native import native_backend_status

    status = native_backend_status()
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "backend": status["resolved"],
        "requested_backend": status["requested"],
        "numpy_version": status["numpy"]["version"],
        "cffi_version": status["cffi"]["version"],
        "cc": status["compiler"]["cc"],
        "c_kernel_built": status["c_kernel"]["built"],
    }


def write_bench_report(name: str, report: Dict, output: Optional[str] = None) -> str:
    """Write a gate report to ``BENCH_<name>.json`` with the environment stanza.

    ``output`` overrides the canonical :func:`bench_output_path`
    location (benchmarks expose it as ``--output``).  The report is
    written with an ``environment`` block (see :func:`bench_environment`)
    unless the caller already provided one.  Returns the path written.
    """
    document = dict(report)
    document.setdefault("environment", bench_environment())
    path = output or bench_output_path(name)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def collect_bench_reports(directory: Optional[str] = None) -> Dict[str, str]:
    """Map gate name -> path for every ``BENCH_*.json`` in ``directory``.

    Defaults to the same directory :func:`bench_output_path` writes to,
    so dashboards (e.g. the replay harness) can pick up the full gate
    trajectory without knowing each benchmark's filename.
    """
    base = directory or os.environ.get("REPRO_BENCH_DIR") or os.getcwd()
    reports = {}
    for path in sorted(glob.glob(os.path.join(base, "BENCH_*.json"))):
        stem = os.path.basename(path)[len("BENCH_"):-len(".json")]
        reports[stem] = path
    return reports


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.report",
        description="Regenerate the evaluation tables and figures of "
        "Fender & Moerkotte (ICDE 2011).",
    )
    parser.add_argument(
        "-e",
        "--experiment",
        action="append",
        choices=sorted(EXPERIMENTS),
        help="experiment to run (repeatable)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "full"],
        default="quick",
        help="workload size: quick (seconds) or full (minutes)",
    )
    parser.add_argument(
        "-o", "--output", help="also append rendered results to this file"
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render figure-style experiments as ASCII charts too",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, fn in sorted(EXPERIMENTS.items()):
            doc = (fn.__doc__ or "").strip().splitlines()
            print(f"{name:20s} {doc[0] if doc else ''}")
        return 0

    names = list(EXPERIMENTS) if args.all else (args.experiment or [])
    if not names:
        parser.error("pass --all, --list, or at least one -e/--experiment")

    chunks = []
    for name in names:
        started = time.perf_counter()
        result = run_experiment(name, scale=args.scale)
        elapsed = time.perf_counter() - started
        text = result.render() + f"\n(ran in {elapsed:.1f}s, scale={args.scale})\n"
        if args.chart:
            from repro.bench.charts import chart_from_experiment

            chart = chart_from_experiment(result)
            if "no chartable" not in chart and "no data" not in chart:
                text += "\n" + chart + "\n"
        print(text)
        chunks.append(text)
    if args.output:
        with open(args.output, "a") as handle:
            handle.write("\n".join(chunks))
    return 0


if __name__ == "__main__":
    sys.exit(main())

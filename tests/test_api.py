"""Unit tests for the public facade (make_optimizer / optimize_query)."""

import pytest

from repro import (
    ALGORITHMS,
    Catalog,
    CoutCostModel,
    QueryGraph,
    WorkloadGenerator,
    chain_graph,
    make_optimizer,
    optimize_query,
    uniform_statistics,
)
from repro.errors import OptimizationError


class TestRegistry:
    def test_expected_algorithms_present(self):
        assert set(ALGORITHMS) == {
            "tdmincutbranch",
            "tdmincutlazy",
            "memoizationbasic",
            "tdconservative",
            "dpccp",
            "dpsub",
            "dpsize",
        }

    def test_make_optimizer_unknown_name(self):
        catalog = uniform_statistics(chain_graph(3))
        with pytest.raises(OptimizationError):
            make_optimizer("quickpick", catalog)

    def test_make_optimizer_returns_named_optimizer(self):
        catalog = uniform_statistics(chain_graph(3))
        optimizer = make_optimizer("dpccp", catalog)
        assert optimizer.name == "dpccp"


class TestOptimizeQuery:
    def test_accepts_catalog(self):
        catalog = uniform_statistics(chain_graph(4))
        result = optimize_query(catalog)
        assert result.algorithm == "tdmincutbranch"
        assert result.plan.n_joins() == 3

    def test_accepts_bare_graph(self):
        result = optimize_query(chain_graph(4))
        assert result.plan.n_joins() == 3

    def test_accepts_query_instance(self):
        instance = WorkloadGenerator(seed=0).fixed_shape("cycle", 5)
        result = optimize_query(instance)
        assert result.plan.n_joins() == 4

    def test_rejects_garbage(self):
        with pytest.raises(OptimizationError):
            optimize_query(42)

    def test_result_counters_consistent(self):
        catalog = uniform_statistics(chain_graph(5))
        result = optimize_query(catalog)
        assert result.cost == result.plan.cost
        assert result.memo_entries >= 5
        assert result.cost_evaluations == 2 * result.details["ccps_emitted"]
        assert result.elapsed_seconds > 0

    def test_details_for_bottom_up(self):
        catalog = uniform_statistics(chain_graph(5))
        result = optimize_query(catalog, algorithm="dpccp")
        assert "ccps_emitted" not in result.details

    def test_summary_format(self):
        catalog = uniform_statistics(chain_graph(3))
        summary = optimize_query(catalog).summary()
        assert "tdmincutbranch" in summary
        assert "cost=" in summary
        assert "memo=" in summary

    def test_custom_cost_model_used(self):
        catalog = uniform_statistics(chain_graph(4))
        cout = optimize_query(catalog, cost_model=CoutCostModel())
        assert cout.plan.implementation == "join"


class TestAutoAlgorithm:
    def test_auto_runs(self):
        from repro import attach_random_statistics, cycle_graph

        catalog = attach_random_statistics(cycle_graph(6), seed=1)
        result = optimize_query(catalog, algorithm="auto")
        result.plan.validate()
        assert result.algorithm == "auto"

    def test_choose_sparse_prefers_topdown(self):
        from repro import chain_graph
        from repro.optimizer.api import choose_algorithm

        catalog = uniform_statistics(chain_graph(12))
        assert choose_algorithm(catalog) == "tdmincutbranch"

    def test_choose_dense_prefers_dpccp(self):
        from repro import clique_graph
        from repro.optimizer.api import choose_algorithm

        catalog = uniform_statistics(clique_graph(12))
        assert choose_algorithm(catalog) == "dpccp"

    def test_pruning_forces_topdown(self):
        from repro import clique_graph
        from repro.optimizer.api import choose_algorithm

        catalog = uniform_statistics(clique_graph(12))
        assert choose_algorithm(catalog, enable_pruning=True) == "tdmincutbranch"

    def test_auto_with_pruning_end_to_end(self):
        from repro import attach_random_statistics, clique_graph

        catalog = attach_random_statistics(clique_graph(7), seed=2)
        pruned = optimize_query(catalog, algorithm="auto", enable_pruning=True)
        plain = optimize_query(catalog, algorithm="dpsub")
        import math

        assert math.isclose(pruned.cost, plain.cost, rel_tol=1e-9)

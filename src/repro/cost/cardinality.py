"""Incremental cardinality estimation over relation sets.

Cardinality estimation is the expensive half of plan costing (the paper's
"Fortunate Observation": it happens once per connected subgraph, and is an
order of magnitude dearer than the join cost function).  The estimator
therefore exposes the incremental form used by the optimizers::

    card(S1 | S2) = card(S1) * card(S2) * sel_between(S1, S2)

so that each csg's cardinality is derived from its parts in O(crossing
edges) and cached in the memo table, never recomputed.
"""

from __future__ import annotations

from repro.catalog.statistics import Catalog

__all__ = ["CardinalityEstimator"]


class CardinalityEstimator:
    """Estimates intermediate-result cardinalities for one catalog.

    Tracks how many fresh estimations were performed (``estimations``),
    which benchmarks use to verify the once-per-csg property.
    """

    __slots__ = ("catalog", "estimations")

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.estimations = 0

    def base(self, vertex: int) -> float:
        """Return the base-relation cardinality for a single vertex."""
        return self.catalog.cardinality(vertex)

    def combine(
        self, left_set: int, left_card: float, right_set: int, right_card: float
    ) -> float:
        """Estimate ``card(left ∪ right)`` from the parts (incremental form)."""
        self.estimations += 1
        selectivity = self.catalog.selectivity_between(left_set, right_set)
        return left_card * right_card * selectivity

    def estimate(self, vertex_set: int) -> float:
        """Estimate from scratch (reference path; used by tests)."""
        return self.catalog.estimate(vertex_set)

"""Resilience primitives: admission control, degradation, breaker, retry.

The serving layer's exact enumerators are super-polynomial in the worst
case — a single hostile request (say a 20-relation clique) can burn a
core for its whole deadline, and a broken worker path can fail the same
way over and over.  This module gives :class:`~repro.service.OptimizerService`
the pieces to *predict* and *contain* that cost instead of merely timing
it out:

* :func:`estimate_ccps` — admission-control estimate of the search-space
  size (#ccp) a request would make the enumerator traverse: exact
  enumeration counts for small graphs, Table-I closed forms for the
  fixed shapes, and the log-space interpolation of
  :func:`repro.analysis.formulas.ccp_estimate` for everything else.
* the **degradation ladder** — ``exact → dpconv → ikkbz → goo``.
  ``dpconv`` is the *fast-exact* rung: for symmetric cost models within
  its work budget (:func:`dpconv_admissible`), an over-budget request is
  still answered with the exact optimum via (min,+) subset convolution
  instead of a heuristic plan.  Below it, IKKBZ is the polynomial-time
  *optimal left-deep* rung for acyclic graphs and GOO the universal
  greedy bushy rung.  :func:`heuristic_rung_for` picks the highest
  applicable heuristic rung, :func:`run_rung` executes one.
* :class:`CircuitBreaker` — per-algorithm-label closed → open →
  half-open breaker over consecutive failures with a cooldown and a
  single half-open probe.
* :class:`RetryPolicy` / :class:`RetryBudget` — bounded exponential
  backoff with *deterministic* jitter (derived from the retry token, so
  test runs and replays schedule identically) and a per-batch cap on
  total retry attempts.

Everything here is dependency-free and thread-safe where it needs to be;
the service wires these pieces together in :mod:`repro.service.core` and
the process executor honors the retry schedule in
:mod:`repro.service.executor`.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.analysis.formulas import ccp_count, ccp_estimate
from repro.catalog.statistics import Catalog
from repro.cost.base import CostModel
from repro.enumeration.counting import count_ccps
from repro.errors import AdmissionError, OptimizationError
from repro.graph.query_graph import QueryGraph
from repro.plan.jointree import JoinTree

__all__ = [
    "AdmissionEstimate",
    "CircuitBreaker",
    "LADDER_RUNGS",
    "ResilienceConfig",
    "RetryBudget",
    "RetryPolicy",
    "dpconv_admissible",
    "estimate_ccps",
    "heuristic_rung_for",
    "run_rung",
]

#: Degradation ladder, best rung first.  ``exact`` is whatever registry
#: enumerator the request resolved to; ``dpconv`` is the fast-exact
#: rung (still the true optimum, cheaper engine); ``anytime`` runs the
#: exact engine under a cooperative deadline and salvages the partial
#: memo into a valid plan at expiry (at worst the GOO plan, often far
#: better — and exact whenever the search finishes early); the rest are
#: polynomial-time heuristics with shrinking plan-quality guarantees.
LADDER_RUNGS = ("exact", "dpconv", "anytime", "ikkbz", "goo")

#: Shapes with a Table-I closed form for #ccp.
_CLOSED_FORM_SHAPES = ("chain", "star", "cycle", "clique")


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning knobs for the service's resilience layer.

    ``max_ccp_budget=None`` disables admission control entirely;
    ``max_retries=0`` disables retry.  The breaker is always armed — with
    the default threshold it only matters once a label fails five times
    in a row, which a healthy deployment never sees.
    """

    #: Reject exact enumeration when the estimated #ccp exceeds this
    #: (``None`` = admission control off).
    max_ccp_budget: Optional[int] = None
    #: Largest ``n`` for which admission uses exact enumeration counts
    #: (shape-detected closed forms are used at any size).
    admission_exact_max_n: int = 10
    #: Consecutive failures/timeouts per algorithm label that open the
    #: circuit breaker.
    breaker_threshold: int = 5
    #: Seconds an open breaker waits before allowing a half-open probe.
    breaker_cooldown_seconds: float = 30.0
    #: Retry attempts per batch item for transient worker failures
    #: (crash, pipe EOF, corrupted payload); 0 disables retry.
    max_retries: int = 0
    #: First backoff delay; doubles per attempt up to ``retry_max_delay``.
    retry_base_delay: float = 0.05
    retry_max_delay: float = 2.0
    #: Deterministic jitter as a fraction of the computed delay.
    retry_jitter: float = 0.25
    #: Cap on *total* retry attempts across one batch, so a batch of
    #: uniformly crashing items cannot multiply its own cost unbounded.
    retry_budget_per_batch: int = 16
    #: Largest ``n`` the dpconv fast-exact rung will take on.  Its dense
    #: per-subset arrays are ``O(2^n)`` memory, so this is a hard cap
    #: independent of the work budget below.
    dpconv_max_n: int = 16
    #: Split-loop iteration budget for the dpconv rung: the rung runs
    #: ``3^n / 2`` iterations (see
    #: :func:`repro.optimizer.dpconv.dpconv_split_work`); the default
    #: covers clique-15 (~7.2M) in well under a request deadline.
    dpconv_split_budget: int = 8_000_000
    #: Over-budget requests that the dpconv rung cannot take run the
    #: exact engine under a cooperative deadline (the ``anytime`` rung)
    #: instead of jumping straight to a heuristic; the salvaged plan is
    #: never worse than the GOO rung.  Disable to restore the pre-anytime
    #: ladder.
    anytime_enabled: bool = True
    #: Deadline for the anytime rung when the request itself carries
    #: none.  ``None`` means requests without a deadline skip the rung
    #: (an unbounded "anytime" run is just the exact rung).
    anytime_default_deadline_seconds: Optional[float] = 0.25

    def __post_init__(self) -> None:
        if self.max_ccp_budget is not None and self.max_ccp_budget < 1:
            raise OptimizationError(
                f"max_ccp_budget must be >= 1 or None, got {self.max_ccp_budget}"
            )
        if self.breaker_threshold < 1:
            raise OptimizationError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown_seconds < 0:
            raise OptimizationError(
                "breaker_cooldown_seconds must be >= 0, "
                f"got {self.breaker_cooldown_seconds}"
            )
        if self.max_retries < 0:
            raise OptimizationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_budget_per_batch < 0:
            raise OptimizationError(
                "retry_budget_per_batch must be >= 0, "
                f"got {self.retry_budget_per_batch}"
            )
        if self.dpconv_max_n < 0:
            raise OptimizationError(
                f"dpconv_max_n must be >= 0, got {self.dpconv_max_n}"
            )
        if self.dpconv_split_budget < 0:
            raise OptimizationError(
                "dpconv_split_budget must be >= 0, "
                f"got {self.dpconv_split_budget}"
            )
        if (
            self.anytime_default_deadline_seconds is not None
            and not self.anytime_default_deadline_seconds > 0
        ):
            raise OptimizationError(
                "anytime_default_deadline_seconds must be > 0 or None, "
                f"got {self.anytime_default_deadline_seconds}"
            )

    def retry_policy(self) -> Optional["RetryPolicy"]:
        """Build the batch retry policy, or ``None`` when retry is off."""
        if self.max_retries == 0:
            return None
        return RetryPolicy(
            max_retries=self.max_retries,
            base_delay=self.retry_base_delay,
            max_delay=self.retry_max_delay,
            jitter=self.retry_jitter,
        )


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AdmissionEstimate:
    """Predicted search-space size for one query graph.

    ``method`` records how the number was obtained: ``"exact"``
    (enumeration count), ``"closed-form:<shape>"`` (Table-I formula), or
    ``"interpolated"`` (log-space density interpolation).
    """

    ccps: int
    method: str
    shape: str


def estimate_ccps(
    graph: QueryGraph,
    exact_max_n: int = 10,
    allow_cross_products: bool = False,
) -> AdmissionEstimate:
    """Estimate #ccp for ``graph`` without enumerating when that is the cost.

    Fixed shapes use their closed form at any size; other graphs up to
    ``exact_max_n`` vertices are counted exactly (cheap at that scale);
    larger irregular graphs get the interpolated estimate of
    :func:`repro.analysis.formulas.ccp_estimate`.

    ``allow_cross_products=True`` prices the **clique**, whatever the
    predicate edges say: the flag admits joins between relations with no
    connecting predicate, so the search space the client opted into is
    bounded by — and for sparse inputs dominated by — the complete
    graph's, not the raw edge set's.  Pricing the raw edges here used to
    under-admit by orders of magnitude (a disconnected 2x chain-10
    priced as ~two chains instead of the clique-20 neighborhood its
    cross-product request can reach).

    Disconnected graphs *without* cross products get a typed
    per-component estimate (``method="per-component"``) — the sum of
    each component's estimate, i.e. the cost of optimizing the
    components independently — instead of the :class:`GraphError` that
    :func:`~repro.analysis.formulas.ccp_estimate` raises for edge counts
    below ``n - 1``.
    """
    n = graph.n_vertices
    if allow_cross_products:
        return AdmissionEstimate(
            ccps=ccp_count("clique", n),
            method="closed-form:clique",
            shape="cross-products",
        )
    shape = graph.shape_name()
    if n > 1 and not graph.is_connected(graph.all_vertices):
        total = 0
        for component in graph.connected_components(graph.all_vertices):
            vertices = [v for v in range(n) if component >> v & 1]
            k = len(vertices)
            if k <= 1:
                continue
            edges_within = sum(
                1
                for (u, v) in graph.edges
                if component >> u & 1 and component >> v & 1
            )
            max_degree = max(
                bin(graph.neighbors_of_vertex(v) & component).count("1")
                for v in vertices
            )
            total += ccp_estimate(k, edges_within, max_degree)
        return AdmissionEstimate(
            ccps=total, method="per-component", shape=shape
        )
    if shape in _CLOSED_FORM_SHAPES:
        return AdmissionEstimate(
            ccps=ccp_count(shape, n), method=f"closed-form:{shape}", shape=shape
        )
    if n <= exact_max_n:
        return AdmissionEstimate(
            ccps=count_ccps(graph), method="exact", shape=shape
        )
    max_degree = max(graph.degree(v) for v in range(n))
    return AdmissionEstimate(
        ccps=ccp_estimate(n, graph.n_edges, max_degree),
        method="interpolated",
        shape=shape,
    )


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------

def dpconv_admissible(
    graph: QueryGraph,
    cost_model: Optional[CostModel],
    config: ResilienceConfig,
) -> bool:
    """Can the dpconv fast-exact rung serve this query within budget?

    Three gates: the cost model must be symmetric (the convolution
    prices each unordered split once — exact only then), the vertex
    count must fit the rung's ``O(2^n)`` arrays, and the rung's total
    work — ``3^n / 2`` split iterations, connected or not — must fit
    ``dpconv_split_budget``.  The work model is *shape-independent* on
    purpose: unlike the exact enumerators, the convolution visits every
    submask pair whether or not it is a ccp, so a chain and a clique of
    the same ``n`` cost the rung the same.

    ``cost_model=None`` means the registry default — C_out, which is
    symmetric — so ``None`` passes the symmetry gate.
    """
    if cost_model is not None and not cost_model.is_symmetric():
        return False
    n = graph.n_vertices
    if n > config.dpconv_max_n:
        return False
    from repro.optimizer.dpconv import dpconv_split_work

    return dpconv_split_work(n) <= config.dpconv_split_budget


def heuristic_rung_for(graph: QueryGraph) -> str:
    """Pick the best heuristic rung for a *connected* graph.

    Acyclic graphs get IKKBZ — polynomial time yet provably the optimal
    left-deep, cross-product-free order under ASI cost functions — and
    everything else gets GOO, the greedy bushy heuristic that works on
    any connected shape.
    """
    if graph.is_acyclic():
        return "ikkbz"
    return "goo"


def run_rung(
    rung: str, catalog: Catalog, cost_model: Optional[CostModel] = None
) -> Tuple[JoinTree, str]:
    """Execute one degradation ladder rung; return ``(plan, rung_used)``.

    Each rung falls through to the next if it cannot handle the query
    (the rung chooser should prevent that, but degradation must not
    introduce a *new* failure mode on the path meant to avoid failures)
    — the returned rung name reflects what actually ran.  ``cost_model``
    matters only to the ``dpconv`` rung; the heuristics optimize their
    own objectives.
    """
    if rung == "dpconv":
        from repro.optimizer.dpconv import DPconvPlanGenerator

        try:
            plan = DPconvPlanGenerator(catalog, cost_model=cost_model).optimize()
            return plan, "dpconv"
        except OptimizationError:
            rung = "ikkbz"
    if rung == "ikkbz":
        from repro.heuristics.ikkbz import ikkbz_optimal_left_deep

        try:
            return ikkbz_optimal_left_deep(catalog), "ikkbz"
        except OptimizationError:
            rung = "goo"
    if rung == "goo":
        from repro.heuristics.goo import greedy_operator_ordering

        return greedy_operator_ordering(catalog), "goo"
    if rung == "anytime":
        raise AdmissionError(
            "the anytime rung is a deadline-scoped exact run; the service "
            "core executes it through optimize_request, not run_rung"
        )
    raise AdmissionError(
        f"unknown degradation rung {rung!r}; expected one of "
        f"{LADDER_RUNGS[1:]}"
    )


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------

#: Breaker states (string-valued so snapshots are JSON-ready).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class _BreakerSlot:
    __slots__ = ("state", "consecutive_failures", "opened_at", "probing")

    def __init__(self) -> None:
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.probing = False


class CircuitBreaker:
    """Per-label circuit breaker: closed → open → half-open → closed.

    ``allow(label)`` is the admission gate: it returns ``False`` while
    the label's circuit is open (within the cooldown), and in half-open
    state admits exactly **one** probe request at a time.  Callers must
    pair every admitted exact run with ``record_success`` or
    ``record_failure`` so the probe resolves; a success closes the
    circuit, a failure re-opens it and restarts the cooldown.

    The clock is injectable for tests (defaults to
    :func:`time.monotonic`).  All methods are thread-safe.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise OptimizationError(
                f"breaker threshold must be >= 1, got {threshold}"
            )
        if cooldown_seconds < 0:
            raise OptimizationError(
                f"breaker cooldown must be >= 0, got {cooldown_seconds}"
            )
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._slots: Dict[str, _BreakerSlot] = {}

    def _slot(self, label: str) -> _BreakerSlot:
        slot = self._slots.get(label)
        if slot is None:
            slot = _BreakerSlot()
            self._slots[label] = slot
        return slot

    def allow(self, label: str) -> bool:
        """Gate one exact run under ``label``; may admit a half-open probe."""
        with self._lock:
            slot = self._slot(label)
            if slot.state == BREAKER_OPEN:
                if self._clock() - slot.opened_at >= self.cooldown_seconds:
                    slot.state = BREAKER_HALF_OPEN
                    slot.probing = False
                else:
                    return False
            if slot.state == BREAKER_HALF_OPEN:
                if slot.probing:
                    return False
                slot.probing = True
            return True

    def record_success(self, label: str) -> None:
        """Resolve one admitted run as a success (closes a half-open probe)."""
        with self._lock:
            slot = self._slot(label)
            slot.consecutive_failures = 0
            if slot.state == BREAKER_HALF_OPEN:
                slot.state = BREAKER_CLOSED
                slot.probing = False

    def record_failure(self, label: str) -> None:
        """Resolve one admitted run as a failure/timeout."""
        with self._lock:
            slot = self._slot(label)
            if slot.state == BREAKER_HALF_OPEN:
                slot.state = BREAKER_OPEN
                slot.opened_at = self._clock()
                slot.probing = False
                return
            slot.consecutive_failures += 1
            if (
                slot.state == BREAKER_CLOSED
                and slot.consecutive_failures >= self.threshold
            ):
                slot.state = BREAKER_OPEN
                slot.opened_at = self._clock()

    def state(self, label: str) -> str:
        """Return the label's current state (never mutates)."""
        with self._lock:
            slot = self._slots.get(label)
            return slot.state if slot is not None else BREAKER_CLOSED

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready per-label breaker state for ``stats_snapshot()``."""
        with self._lock:
            now = self._clock()
            return {
                label: {
                    "state": slot.state,
                    "consecutive_failures": slot.consecutive_failures,
                    "seconds_since_opened": (
                        round(now - slot.opened_at, 3)
                        if slot.state != BREAKER_CLOSED
                        else None
                    ),
                }
                for label, slot in sorted(self._slots.items())
            }

    def reset(self) -> None:
        """Forget all labels (fresh breaker epoch)."""
        with self._lock:
            self._slots.clear()


# ----------------------------------------------------------------------
# Retry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``delay(attempt, token)`` returns the sleep before retry *attempt*
    (0-based: the delay between the first failure and the first retry is
    ``delay(0)``).  Jitter is derived from a SHA-256 hash of
    ``(token, attempt)`` rather than a PRNG, so a given request retries
    on an identical schedule every run — which is what makes the chaos
    tests reproducible.
    """

    max_retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise OptimizationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise OptimizationError("retry delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise OptimizationError(
                f"retry jitter must be in [0, 1], got {self.jitter}"
            )

    def delay(self, attempt: int, token: str = "") -> float:
        """Backoff before retry ``attempt`` (deterministic in ``token``)."""
        if attempt < 0:
            raise OptimizationError(f"attempt must be >= 0, got {attempt}")
        delay = min(self.max_delay, self.base_delay * (2 ** attempt))
        if self.jitter == 0 or delay == 0:
            return delay
        digest = hashlib.sha256(
            f"{token}:{attempt}".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:4], "big") / 2 ** 32
        return delay * (1.0 + self.jitter * (fraction - 0.5))


class RetryBudget:
    """Thread-safe cap on total retry attempts within one batch."""

    def __init__(self, limit: int):
        if limit < 0:
            raise OptimizationError(
                f"retry budget must be >= 0, got {limit}"
            )
        self.limit = limit
        self._lock = threading.Lock()
        self._spent = 0

    def try_acquire(self) -> bool:
        """Consume one retry attempt; False once the budget is exhausted."""
        with self._lock:
            if self._spent >= self.limit:
                return False
            self._spent += 1
            return True

    @property
    def spent(self) -> int:
        with self._lock:
            return self._spent

    @property
    def remaining(self) -> int:
        with self._lock:
            return max(0, self.limit - self._spent)

"""Fidelity tests: TracedMinCutBranch vs the paper's Tables II and III.

The paper walks branch partitioning through two examples: the chain of
Fig. 7 (Table II) and the cyclic graph of Fig. 8 (Table III).  These
tests assert our execution reproduces those tables row by row.

Two places where the published tables disagree with the published
pseudocode (we follow the pseudocode; the suite pins our values):

* Table II prints ``N_B = ∅`` for the level-1 invocations, but Fig. 5
  line 5 yields ``N_B = {R2}``/``{R1}`` there (the other branch of the
  chain is a neighbor of C not adjacent to L).
* Table III labels the second and third root-level children "case 2",
  but after the first child returns the full complement, the remaining
  neighbors lie inside ``R_tmp``, which is case 1 by lines 7-9 — and
  indeed the X values the table itself prints (X={R1}, X={R1,R2}) are
  the accumulating case-1 filter sets.
"""

import pytest

from repro import MinCutBranch, QueryGraph, bitset
from repro.enumeration.base import canonical_pair
from repro.enumeration.trace import TracedMinCutBranch


def fig7_chain() -> QueryGraph:
    """Fig. 7: R3 - R1 - R0 - R2 - R4."""
    return QueryGraph(5, [(1, 3), (0, 1), (0, 2), (2, 4)])


def fig8_cycle() -> QueryGraph:
    """Fig. 8: R0-R1, R0-R2, R0-R3, R1-R3, R2-R3."""
    return QueryGraph(4, [(0, 1), (0, 2), (0, 3), (1, 3), (2, 3)])


def _calls(trace, skip_trivial=False):
    calls = [e for e in trace.events if e.kind == "call"]
    if skip_trivial:
        calls = [e for e in calls if e.n_l or e.n_x or e.n_b]
    return calls


def _emissions(trace):
    return [e.emitted for e in trace.events if e.emitted is not None]


class TestTableII:
    def test_call_rows(self):
        graph = fig7_chain()
        trace = TracedMinCutBranch(graph)
        list(trace.partitions(graph.all_vertices))
        rows = [
            (e.level, e.case, e.c_set, e.l_set, e.x_set, e.n_l, e.n_x)
            for e in _calls(trace)
        ]
        S = bitset.set_of
        assert rows == [
            (0, None, S(0), S(0), 0, S(1, 2), 0),
            (1, 2, S(0, 1), S(1), 0, S(3), 0),
            (2, 2, S(0, 1, 3), S(3), 0, 0, 0),
            (1, 2, S(0, 2), S(2), 0, S(4), 0),
            (2, 2, S(0, 2, 4), S(4), 0, 0, 0),
        ]

    def test_emission_sequence(self):
        graph = fig7_chain()
        trace = TracedMinCutBranch(graph)
        list(trace.partitions(graph.all_vertices))
        S = bitset.set_of
        assert _emissions(trace) == [
            (S(0, 1, 2, 4), S(3)),
            (S(0, 2, 4), S(1, 3)),
            (S(0, 1, 2, 3), S(4)),
            (S(0, 1, 3), S(2, 4)),
        ]

    def test_acyclic_only_case_two(self):
        # Sec. III-E: "For all acyclic graphs, MINCUTBRANCH has only
        # case 2 to consider."
        graph = fig7_chain()
        trace = TracedMinCutBranch(graph)
        list(trace.partitions(graph.all_vertices))
        for event in _calls(trace):
            assert event.case in (None, 2)

    def test_recursion_depth_matches_paper(self):
        # "The maximal recursion depth depends on the position of the
        # start vertex.  Here, it is 3" — levels 0..2 non-trivial plus
        # the omitted level-3 frames never materialize (N_L empty stops
        # recursion at level 2).
        graph = fig7_chain()
        trace = TracedMinCutBranch(graph)
        list(trace.partitions(graph.all_vertices))
        assert max(e.level for e in _calls(trace)) == 2


class TestTableIII:
    def test_call_rows(self):
        graph = fig8_cycle()
        trace = TracedMinCutBranch(graph)
        list(trace.partitions(graph.all_vertices))
        # The paper omits frames whose neighbor sets are all empty
        # ("due to the lack of space"); filter the same way.
        rows = [
            (e.level, e.case, e.c_set, e.l_set, e.x_set, e.n_l, e.n_x, e.n_b)
            for e in _calls(trace, skip_trivial=True)
        ]
        S = bitset.set_of
        assert rows == [
            (0, None, S(0), S(0), 0, S(1, 2, 3), 0, 0),
            (1, 2, S(0, 1), S(1), 0, S(3), 0, S(2)),
            (2, 2, S(0, 1, 3), S(3), 0, S(2), 0, 0),
            (2, 1, S(0, 1, 2), S(2), S(3), 0, S(3), 0),
            (1, 1, S(0, 2), S(2), S(1), S(3), 0, 0),
            (2, 2, S(0, 2, 3), S(3), S(1), 0, S(1), 0),
            (1, 1, S(0, 3), S(3), S(1, 2), 0, S(1, 2), 0),
        ]

    def test_emission_sequence(self):
        graph = fig8_cycle()
        trace = TracedMinCutBranch(graph)
        list(trace.partitions(graph.all_vertices))
        S = bitset.set_of
        assert _emissions(trace) == [
            (S(0, 1, 3), S(2)),
            (S(0, 1), S(2, 3)),
            (S(0, 1, 2), S(3)),
            (S(0), S(1, 2, 3)),
            (S(0, 2, 3), S(1)),
            (S(0, 2), S(1, 3)),
        ]

    def test_last_invocation_emits_nothing(self):
        # "there is a recursive invocation ... with C = {R0, R3} and
        # X = {R1, R2} that does not emit any further ccps.
        # Unfortunately, this is an execution overhead that cannot be
        # avoided easily."
        graph = fig8_cycle()
        trace = TracedMinCutBranch(graph)
        list(trace.partitions(graph.all_vertices))
        last_call = _calls(trace)[-1]
        assert last_call.c_set == bitset.set_of(0, 3)
        assert last_call.x_set == bitset.set_of(1, 2)
        # Everything after that call: two Reachable returns, no emission.
        index = trace.events.index(last_call)
        tail = trace.events[index + 1:]
        assert [e.kind for e in tail if e.kind == "reachable"] == [
            "reachable",
            "reachable",
        ]
        assert all(e.emitted is None for e in tail)

    def test_reachable_returns_match_paper(self):
        # "2 calls to REACHABLE return {R1} and {R2}" (final frame) plus
        # the two emitting Reachable calls earlier.
        graph = fig8_cycle()
        trace = TracedMinCutBranch(graph)
        list(trace.partitions(graph.all_vertices))
        reachable = [e.returned for e in trace.events if e.kind == "reachable"]
        S = bitset.set_of
        assert reachable == [S(3), S(1), S(1), S(2)]


class TestTraceEquivalence:
    def test_traced_equals_plain(self, rng):
        from .conftest import random_connected_graph

        for _ in range(20):
            graph = random_connected_graph(rng, max_vertices=8)
            plain = sorted(
                canonical_pair(*p)
                for p in MinCutBranch(graph).partitions(graph.all_vertices)
            )
            traced = sorted(
                canonical_pair(*p)
                for p in TracedMinCutBranch(graph).partitions(
                    graph.all_vertices
                )
            )
            assert plain == traced

    def test_render_contains_emissions(self):
        graph = fig8_cycle()
        trace = TracedMinCutBranch(graph)
        list(trace.partitions(graph.all_vertices))
        rendered = trace.render()
        assert rendered.count("emitting") == 6
        assert "REACHABLE returns" in rendered

    def test_render_skips_trivial_frames(self):
        # The cycle trace has a genuinely all-empty level-3 frame.
        graph = fig8_cycle()
        trace = TracedMinCutBranch(graph)
        list(trace.partitions(graph.all_vertices))
        full = trace.render(skip_trivial=False)
        compact = trace.render(skip_trivial=True)
        assert len(compact.splitlines()) < len(full.splitlines())

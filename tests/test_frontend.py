"""Tests for the schema/query front end."""

import math

import pytest

from repro.errors import CatalogError
from repro.frontend import Column, Database, QueryBuilder, Table


def _shop() -> Database:
    db = Database("shop")
    db.add_table("sales", 1_000_000, {"date_id": 2_000, "cust_id": 50_000})
    db.add_table("date_dim", 2_000, {"date_id": 2_000})
    db.add_table("customer", 50_000, {"cust_id": 50_000, "city": 500})
    db.add_foreign_key("sales", "date_id", "date_dim", "date_id")
    db.add_foreign_key("sales", "cust_id", "customer", "cust_id")
    return db


class TestSchema:
    def test_table_lookup(self):
        db = _shop()
        assert db.table("sales").rows == 1_000_000

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            _shop().table("nope")

    def test_duplicate_table(self):
        db = _shop()
        with pytest.raises(CatalogError):
            db.add_table("sales", 10)

    def test_nonpositive_rows(self):
        with pytest.raises(CatalogError):
            Table("bad", 0)

    def test_column_defaults_to_key_like(self):
        table = Table("t", 500)
        assert table.column("mystery").distinct_values == 500

    def test_duplicate_column(self):
        table = Table("t", 10, [Column("a", 5)])
        with pytest.raises(CatalogError):
            table.add_column(Column("a", 7))

    def test_column_requires_positive_ndv(self):
        with pytest.raises(CatalogError):
            Column("a", 0)

    def test_fk_selectivity(self):
        db = _shop()
        assert math.isclose(
            db.join_selectivity("sales", "date_id", "date_dim", "date_id"),
            1.0 / 2_000,
        )
        # Orientation-insensitive.
        assert math.isclose(
            db.join_selectivity("date_dim", "date_id", "sales", "date_id"),
            1.0 / 2_000,
        )

    def test_generic_equijoin_selectivity(self):
        db = _shop()
        # No FK between customer.city and date_dim.date_id: 1/max(ndv).
        assert math.isclose(
            db.join_selectivity("customer", "city", "date_dim", "date_id"),
            1.0 / 2_000,
        )

    def test_fk_declaration_requires_tables(self):
        db = Database()
        with pytest.raises(CatalogError):
            db.add_foreign_key("ghost", "x", "also_ghost", "y")


class TestQueryBuilder:
    def test_build_catalog(self):
        catalog = (
            _shop()
            .query()
            .table("sales")
            .table("date_dim")
            .join("sales.date_id = date_dim.date_id")
            .build_catalog()
        )
        assert catalog.graph.n_vertices == 2
        assert catalog.relation_names() == ["sales", "date_dim"]
        assert math.isclose(catalog.selectivity(0, 1), 1.0 / 2_000)

    def test_optimize_end_to_end(self):
        result = (
            _shop()
            .query()
            .table("sales")
            .table("date_dim")
            .table("customer")
            .join("sales.date_id = date_dim.date_id")
            .join("sales.cust_id = customer.cust_id")
            .optimize()
        )
        result.plan.validate()
        assert result.plan.n_joins() == 2
        names = {leaf.relation for leaf in result.plan.leaves()}
        assert names == {"sales", "date_dim", "customer"}

    def test_self_join_via_aliases(self):
        db = Database()
        db.add_table("emp", 10_000, {"id": 10_000, "manager_id": 1_000})
        result = (
            db.query()
            .table("emp", alias="e")
            .table("emp", alias="m")
            .join("e.manager_id = m.id")
            .optimize()
        )
        assert result.plan.n_joins() == 1

    def test_duplicate_alias_rejected(self):
        db = _shop()
        with pytest.raises(CatalogError):
            db.query().table("sales").table("sales")

    def test_unparseable_predicate(self):
        builder = _shop().query().table("sales").table("customer")
        with pytest.raises(CatalogError):
            builder.join("sales.cust_id == customer.cust_id OR true")

    def test_predicate_over_unreferenced_alias(self):
        builder = _shop().query().table("sales")
        with pytest.raises(CatalogError):
            builder.join("sales.date_id = date_dim.date_id")

    def test_predicate_must_span_two_aliases(self):
        builder = _shop().query().table("sales")
        with pytest.raises(CatalogError):
            builder.join("sales.a = sales.b")

    def test_empty_query_rejected(self):
        with pytest.raises(CatalogError):
            _shop().query().build_catalog()

    def test_conjunctive_predicates_multiply(self):
        db = Database()
        db.add_table("a", 100, {"x": 10, "y": 20})
        db.add_table("b", 100, {"x": 10, "y": 20})
        catalog = (
            db.query()
            .table("a")
            .table("b")
            .join("a.x = b.x")
            .join("a.y = b.y")
            .build_catalog()
        )
        assert catalog.graph.n_edges == 1
        assert math.isclose(catalog.selectivity(0, 1), (1 / 10) * (1 / 20))

    def test_explicit_selectivity_override(self):
        catalog = (
            _shop()
            .query()
            .table("sales")
            .table("customer")
            .join("sales.cust_id = customer.cust_id", selectivity=0.5)
            .build_catalog()
        )
        assert catalog.selectivity(0, 1) == 0.5

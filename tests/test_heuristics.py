"""Tests for restricted plan spaces and heuristics (leftdeep/IKKBZ/GOO)."""

import math

import pytest

from repro import (
    IKKBZ,
    attach_random_statistics,
    chain_graph,
    cycle_graph,
    greedy_operator_ordering,
    ikkbz_optimal_left_deep,
    optimal_left_deep,
    optimize_query,
    random_acyclic_graph,
    star_graph,
    uniform_statistics,
)
from repro.errors import OptimizationError

from .conftest import random_connected_graph


class TestOptimalLeftDeep:
    def test_returns_left_deep(self, rng):
        for _ in range(15):
            graph = random_connected_graph(rng, max_vertices=7)
            catalog = attach_random_statistics(graph, rng=rng)
            plan = optimal_left_deep(catalog)
            plan.validate()
            assert plan.is_left_deep()

    def test_at_least_bushy_optimum(self, rng):
        for _ in range(15):
            graph = random_connected_graph(rng, max_vertices=7)
            catalog = attach_random_statistics(graph, rng=rng)
            left_deep = optimal_left_deep(catalog).cost
            bushy = optimize_query(catalog).cost
            assert left_deep >= bushy * (1 - 1e-9)

    def test_three_relations_spaces_coincide(self):
        # With three relations every bushy tree is linear, and C_out is
        # symmetric, so the two spaces have the same optimum.
        catalog = uniform_statistics(chain_graph(3))
        assert math.isclose(
            optimal_left_deep(catalog).cost,
            optimize_query(catalog).cost,
            rel_tol=1e-9,
        )

    def test_bushy_beats_left_deep_on_uniform_chain(self):
        # Strategy-space comparison (paper ref. [1]): under C_out with
        # growing intermediates, bushy trees strictly win on chains
        # (balanced subtrees keep intermediate sizes smaller).
        catalog = uniform_statistics(chain_graph(6))
        assert optimize_query(catalog).cost < optimal_left_deep(catalog).cost

    def test_bushy_strictly_beats_left_deep_somewhere(self, rng):
        # Ioannidis & Kang's point: the left-deep space misses plans.
        strict = 0
        for seed in range(40):
            graph = random_acyclic_graph(7, seed=seed)
            catalog = attach_random_statistics(graph, seed=seed)
            gap = optimal_left_deep(catalog).cost / optimize_query(catalog).cost
            if gap > 1.01:
                strict += 1
        assert strict > 0

    def test_single_relation(self):
        catalog = uniform_statistics(chain_graph(1))
        assert optimal_left_deep(catalog).is_leaf

    def test_disconnected_rejected(self):
        from repro import QueryGraph

        catalog = uniform_statistics(QueryGraph(3, [(0, 1)]))
        with pytest.raises(OptimizationError):
            optimal_left_deep(catalog)


class TestIKKBZ:
    def test_equals_left_deep_dp_on_trees(self, rng):
        for _ in range(40):
            n = rng.randint(2, 9)
            graph = random_acyclic_graph(n, rng=rng)
            catalog = attach_random_statistics(graph, rng=rng)
            dp_cost = optimal_left_deep(catalog).cost
            ikkbz_cost = ikkbz_optimal_left_deep(catalog).cost
            assert math.isclose(dp_cost, ikkbz_cost, rel_tol=1e-9), graph

    def test_sequence_prefixes_connected(self, rng):
        # Cross-product freedom: every prefix must induce a connected set.
        for _ in range(20):
            n = rng.randint(2, 8)
            graph = random_acyclic_graph(n, rng=rng)
            catalog = attach_random_statistics(graph, rng=rng)
            order, _ = IKKBZ(catalog).best_sequence()
            covered = 0
            for v in order:
                covered |= 1 << v
                assert graph.is_connected(covered)

    def test_rejects_cyclic(self):
        catalog = uniform_statistics(cycle_graph(4))
        with pytest.raises(OptimizationError):
            IKKBZ(catalog)

    def test_star_starts_small(self):
        # On a star, the cheapest orders interleave small dimensions
        # early; IKKBZ must not start from the largest satellite.
        from repro import Catalog, Relation

        graph = star_graph(4)
        catalog = Catalog(
            graph,
            [
                Relation("fact", 1_000_000),
                Relation("tiny", 10),
                Relation("mid", 1_000),
                Relation("big", 100_000),
            ],
            {(0, 1): 0.001, (0, 2): 0.001, (0, 3): 0.001},
        )
        order, cost = IKKBZ(catalog).best_sequence()
        assert math.isclose(
            cost, optimal_left_deep(catalog).cost, rel_tol=1e-9
        )
        # After the mandatory hub contact, the tiny dimension comes first.
        satellites = [v for v in order if v != 0]
        assert satellites[0] == 1

    def test_single_relation(self):
        catalog = uniform_statistics(chain_graph(1))
        order, cost = IKKBZ(catalog).best_sequence()
        assert order == [0]
        assert cost == 0.0

    def test_plan_cost_consistent_with_sequence(self, rng):
        for _ in range(10):
            graph = random_acyclic_graph(rng.randint(2, 8), rng=rng)
            catalog = attach_random_statistics(graph, rng=rng)
            ikkbz = IKKBZ(catalog)
            _, cost = ikkbz.best_sequence()
            plan = ikkbz.optimize()
            plan.validate()
            assert math.isclose(plan.cost, cost, rel_tol=1e-9)


class TestGOO:
    def test_valid_plan(self, rng):
        for _ in range(20):
            graph = random_connected_graph(rng, max_vertices=8)
            catalog = attach_random_statistics(graph, rng=rng)
            plan = greedy_operator_ordering(catalog)
            plan.validate()
            assert plan.vertex_set == graph.all_vertices

    def test_never_beats_optimum(self, rng):
        for _ in range(20):
            graph = random_connected_graph(rng, max_vertices=7)
            catalog = attach_random_statistics(graph, rng=rng)
            greedy = greedy_operator_ordering(catalog).cost
            optimum = optimize_query(catalog).cost
            assert greedy >= optimum * (1 - 1e-9)

    def test_cost_accounting_matches_estimate(self, rng):
        # The greedy plan's cost must equal the C_out of its own shape.
        for _ in range(10):
            graph = random_connected_graph(rng, max_vertices=6)
            catalog = attach_random_statistics(graph, rng=rng)
            plan = greedy_operator_ordering(catalog)
            expected = sum(
                catalog.estimate(node.vertex_set)
                for node in plan.inner_nodes()
            )
            assert math.isclose(plan.cost, expected, rel_tol=1e-9)

    def test_greedy_can_be_suboptimal(self):
        # Existence check: greedy misses the optimum on some input.
        found = False
        for seed in range(60):
            graph = random_acyclic_graph(7, seed=seed)
            catalog = attach_random_statistics(graph, seed=seed + 1)
            greedy = greedy_operator_ordering(catalog).cost
            optimum = optimize_query(catalog).cost
            if greedy > optimum * 1.01:
                found = True
                break
        assert found

    def test_disconnected_rejected(self):
        from repro import QueryGraph

        catalog = uniform_statistics(QueryGraph(3, [(0, 1)]))
        with pytest.raises(OptimizationError):
            greedy_operator_ordering(catalog)

#!/usr/bin/env python
"""Visualize query graphs, plans, and enumeration behaviour.

Writes Graphviz DOT files for a query graph and its optimal plan
(render with ``dot -Tsvg``), and prints the enumeration traces that show
*why* MinCutBranch wins: MinCutLazy's tree-rebuild rows on a clique vs
MinCutBranch's constant-work recursion.

Run:  python examples/visualize.py [output_dir]
"""

import pathlib
import sys

from repro import attach_random_statistics, clique_graph, cycle_graph, optimize_query
from repro.enumeration.trace import TracedMinCutBranch
from repro.enumeration.trace_lazy import TracedMinCutLazy
from repro.viz import graph_to_dot, plan_to_dot


def write_dot_files(output_dir: pathlib.Path) -> None:
    graph = cycle_graph(6)
    catalog = attach_random_statistics(graph, seed=11)
    result = optimize_query(catalog)

    graph_path = output_dir / "query_graph.dot"
    plan_path = output_dir / "plan.dot"
    graph_path.write_text(graph_to_dot(graph, catalog))
    plan_path.write_text(plan_to_dot(result.plan))
    print(f"wrote {graph_path} and {plan_path}")
    print("render with: dot -Tsvg query_graph.dot -o query_graph.svg")
    print()


def show_enumeration_traces() -> None:
    graph = clique_graph(5)

    print("MinCutLazy on a 5-clique — note the REBUILD rows (O(n^2)/ccp):")
    lazy = TracedMinCutLazy(graph)
    list(lazy.partitions(graph.all_vertices))
    for line in lazy.render().splitlines():
        if "tree" in line or "early" in line:
            print("  " + line)
    print(f"  -> rebuild ratio: {lazy.rebuild_ratio():.0%}")
    print()

    print("MinCutBranch on the same clique — pure set arithmetic:")
    branch = TracedMinCutBranch(graph)
    list(branch.partitions(graph.all_vertices))
    for line in branch.render().splitlines()[:8]:
        print("  " + line)
    print("  ...")


def main() -> None:
    if len(sys.argv) > 1:
        output_dir = pathlib.Path(sys.argv[1])
        output_dir.mkdir(parents=True, exist_ok=True)
    else:
        import tempfile

        output_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-viz-"))
    write_dot_files(output_dir)
    show_enumeration_traces()


if __name__ == "__main__":
    main()

"""Command-line experiment runner: regenerate the paper's tables/figures.

Usage::

    python -m repro.bench.report --all                 # every experiment
    python -m repro.bench.report -e fig09 -e table1    # selected ones
    python -m repro.bench.report --all --scale full    # paper-sized runs
    python -m repro.bench.report --all -o results.txt  # also write a file
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.bench.experiments import EXPERIMENTS, run_experiment

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.report",
        description="Regenerate the evaluation tables and figures of "
        "Fender & Moerkotte (ICDE 2011).",
    )
    parser.add_argument(
        "-e",
        "--experiment",
        action="append",
        choices=sorted(EXPERIMENTS),
        help="experiment to run (repeatable)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "full"],
        default="quick",
        help="workload size: quick (seconds) or full (minutes)",
    )
    parser.add_argument(
        "-o", "--output", help="also append rendered results to this file"
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render figure-style experiments as ASCII charts too",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, fn in sorted(EXPERIMENTS.items()):
            doc = (fn.__doc__ or "").strip().splitlines()
            print(f"{name:20s} {doc[0] if doc else ''}")
        return 0

    names = list(EXPERIMENTS) if args.all else (args.experiment or [])
    if not names:
        parser.error("pass --all, --list, or at least one -e/--experiment")

    chunks = []
    for name in names:
        started = time.perf_counter()
        result = run_experiment(name, scale=args.scale)
        elapsed = time.perf_counter() - started
        text = result.render() + f"\n(ran in {elapsed:.1f}s, scale={args.scale})\n"
        if args.chart:
            from repro.bench.charts import chart_from_experiment

            chart = chart_from_experiment(result)
            if "no chartable" not in chart and "no data" not in chart:
                text += "\n" + chart + "\n"
        print(text)
        chunks.append(text)
    if args.output:
        with open(args.output, "a") as handle:
            handle.write("\n".join(chunks))
    return 0


if __name__ == "__main__":
    sys.exit(main())

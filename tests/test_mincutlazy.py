"""Unit tests for MinCutLazy (DeHaan & Tompa; paper Appendix A/B)."""

import pytest

from repro import (
    MinCutBranch,
    MinCutLazy,
    NaivePartitioning,
    bitset,
    chain_graph,
    clique_graph,
    cycle_graph,
    star_graph,
)
from repro.enumeration.base import canonical_pair

from .conftest import canonical_ccps


class TestEmission:
    def test_start_vertex_stays_in_complement(self):
        # X starts as {t}: the start (lowest) vertex can never enter C,
        # so it is always in the emitted right side.
        for g in (chain_graph(6), cycle_graph(6), clique_graph(5)):
            for left, right in MinCutLazy(g).partitions(g.all_vertices):
                assert right & 1
                assert not left & 1

    @pytest.mark.parametrize("n", range(2, 9))
    def test_chain_count(self, n):
        g = chain_graph(n)
        assert len(list(MinCutLazy(g).partitions(g.all_vertices))) == n - 1

    @pytest.mark.parametrize("n", range(3, 9))
    def test_cycle_count(self, n):
        g = cycle_graph(n)
        pairs = list(MinCutLazy(g).partitions(g.all_vertices))
        assert len(pairs) == n * (n - 1) // 2

    @pytest.mark.parametrize("n", range(2, 9))
    def test_clique_count(self, n):
        g = clique_graph(n)
        pairs = list(MinCutLazy(g).partitions(g.all_vertices))
        assert len(pairs) == 2 ** (n - 1) - 1

    def test_no_duplicates(self, small_shape_graph):
        g = small_shape_graph
        pairs = [
            canonical_pair(l, r)
            for l, r in MinCutLazy(g).partitions(g.all_vertices)
        ]
        assert len(pairs) == len(set(pairs))

    def test_matches_naive(self, small_shape_graph):
        g = small_shape_graph
        assert canonical_ccps(MinCutLazy, g) == canonical_ccps(
            NaivePartitioning, g
        )

    def test_singleton_emits_nothing(self):
        g = chain_graph(3)
        assert list(MinCutLazy(g).partitions(0b100)) == []


class TestTreeReuse:
    """Appendix B accounting: tree builds per shape."""

    @pytest.mark.parametrize("n", range(3, 10))
    def test_chain_builds_one_tree(self, n):
        g = chain_graph(n)
        strategy = MinCutLazy(g)
        list(strategy.partitions(g.all_vertices))
        assert strategy.stats.tree_builds == 1

    @pytest.mark.parametrize("n", range(3, 10))
    def test_star_builds_one_tree(self, n):
        g = star_graph(n)
        strategy = MinCutLazy(g)
        list(strategy.partitions(g.all_vertices))
        assert strategy.stats.tree_builds == 1

    @pytest.mark.parametrize("n", range(3, 10))
    def test_cycle_builds_at_most_n_minus_one(self, n):
        g = cycle_graph(n)
        strategy = MinCutLazy(g)
        list(strategy.partitions(g.all_vertices))
        assert strategy.stats.tree_builds <= n - 1

    @pytest.mark.parametrize("n", range(3, 11))
    def test_clique_builds_exactly_2_to_n_minus_2(self, n):
        g = clique_graph(n)
        strategy = MinCutLazy(g)
        list(strategy.partitions(g.all_vertices))
        assert strategy.stats.tree_builds == 2 ** (n - 2)

    @pytest.mark.parametrize("n", range(3, 11))
    def test_clique_tree_build_cost_formula(self, n):
        # Appendix B: sum of build costs = (1/32) 2^n (n^2 + 11n - 2).
        g = clique_graph(n)
        strategy = MinCutLazy(g)
        list(strategy.partitions(g.all_vertices))
        expected = 2 ** n * (n * n + 11 * n - 2) // 32
        assert strategy.stats.tree_build_cost == expected

    def test_reuse_disabled_rebuilds_every_call(self):
        g = chain_graph(6)
        lazy = MinCutLazy(g, use_reuse_test=False)
        list(lazy.partitions(g.all_vertices))
        reusing = MinCutLazy(g)
        list(reusing.partitions(g.all_vertices))
        assert lazy.stats.tree_builds > reusing.stats.tree_builds

    def test_reuse_disabled_same_output(self, small_shape_graph):
        g = small_shape_graph
        assert canonical_ccps(MinCutLazy, g) == canonical_ccps(
            lambda graph: MinCutLazy(graph, use_reuse_test=False), g
        )


class TestAgainstMinCutBranch:
    def test_same_ccps_on_random_graphs(self, rng):
        from .conftest import random_connected_graph

        for _ in range(40):
            g = random_connected_graph(rng)
            assert canonical_ccps(MinCutLazy, g) == canonical_ccps(
                MinCutBranch, g
            )

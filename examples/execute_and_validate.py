#!/usr/bin/env python
"""Close the loop: execute optimized plans on synthetic data.

The paper costs plans with C_out (sum of intermediate result sizes) but
never runs them.  This example generates synthetic tables whose join
keys realize the catalog's statistics exactly, executes plans with
in-memory hash joins, and shows that:

1. the optimizer's cardinality estimates match measured sizes closely
   (the independence assumption holds by construction on this data),
2. the C_out-optimal plan really does move fewer tuples than a
   deliberately bad plan on actual execution.

Run:  python examples/execute_and_validate.py
"""

from repro import (
    attach_random_statistics,
    bitset,
    optimize_query,
    random_acyclic_graph,
    uniform_statistics,
    chain_graph,
)
from repro.exec import Executor, generate_database, validate_estimates


def estimate_accuracy() -> None:
    print("1) estimate accuracy on synthetic data (chain of 5 relations)")
    catalog = uniform_statistics(chain_graph(5), cardinality=1000, selectivity=0.002)
    database = generate_database(catalog, max_rows=1000, seed=7)
    plan = optimize_query(database.scaled_catalog).plan
    print("   intermediate        estimated   measured   ratio")
    for record in validate_estimates(database, plan):
        name = bitset.format_set(record["vertex_set"])
        print(
            f"   {name:18s} {record['estimated']:10.0f} "
            f"{record['measured']:10.0f}   {record['ratio']:5.2f}"
        )
    print()


def _worst_left_deep(catalog):
    """Costliest left-deep plan (max instead of min): the anti-optimizer."""
    import math

    from repro import JoinTree

    graph = catalog.graph
    worst = {}

    def solve(vertex_set):
        if vertex_set & (vertex_set - 1) == 0:
            return 0.0
        if vertex_set in worst:
            return worst[vertex_set][0]
        best_cost, best_last = -math.inf, None
        for last in bitset.iter_indices(vertex_set):
            rest = vertex_set & ~(1 << last)
            if not graph.is_connected(rest):
                continue
            if graph.neighborhood(rest) & (1 << last) == 0:
                continue
            cost = solve(rest)
            if cost > best_cost:
                best_cost, best_last = cost, last
        total = best_cost + catalog.estimate(vertex_set)
        worst[vertex_set] = (total, best_last)
        return total

    solve(graph.all_vertices)

    def extract(vertex_set):
        if vertex_set & (vertex_set - 1) == 0:
            vertex = bitset.lowest_index(vertex_set)
            return JoinTree(
                vertex_set=vertex_set,
                cardinality=catalog.cardinality(vertex),
                cost=0.0,
                relation=catalog.relations[vertex].name,
            )
        total, last = worst[vertex_set]
        rest = vertex_set & ~(1 << last)
        return JoinTree(
            vertex_set=vertex_set,
            cardinality=catalog.estimate(vertex_set),
            cost=total,
            left=extract(rest),
            right=extract(1 << last),
            implementation="join",
        )

    return extract(graph.all_vertices)


def plan_quality_on_real_tuples() -> None:
    print("2) optimal vs worst valid plan, measured in actual tuples moved")
    graph = random_acyclic_graph(6, seed=9)
    catalog = attach_random_statistics(graph, seed=9)
    database = generate_database(catalog, max_rows=400, seed=9)
    scaled = database.scaled_catalog

    optimal_plan = optimize_query(scaled).plan
    worst_plan = _worst_left_deep(scaled)

    executor = Executor(database)
    optimal = executor.execute(optimal_plan)
    worst = executor.execute(worst_plan)

    print(f"   result rows (identical by definition): "
          f"{optimal.n_rows} vs {worst.n_rows}")
    print(f"   optimal plan   : estimated C_out {optimal_plan.cost:12.0f}, "
          f"measured tuples {optimal.measured_cout:12.0f}")
    print(f"   worst left-deep: estimated C_out {worst_plan.cost:12.0f}, "
          f"measured tuples {worst.measured_cout:12.0f}")
    if optimal.measured_cout <= worst.measured_cout:
        print("   -> the C_out winner also wins on actual tuple traffic")
    else:
        print("   -> sampling noise inverted the ranking on this instance")


def main() -> None:
    estimate_accuracy()
    plan_quality_on_real_tuples()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Trace-span observability: where one request spent its time.

Aggregate metrics (`stats_snapshot`) say how the service is doing;
per-request *traces* say where a specific request burned its budget —
canonical labeling, the cache lookup, admission control, the enumerator
itself, or plan rebinding. This example:

1. runs a cold request and walks its span tree (`prepare` →
   `canonicalize`/`cache_lookup` → `admission` → `enumerate` → `store`),
2. runs the same query warm and shows the hit's short trace
   (`cache_lookup` + `rebind`, no `enumerate`),
3. wires the slow-request log to a threshold so the cold request trips
   it and the warm one does not,
4. renders the service snapshot in Prometheus text format.

Run:  python examples/service_tracing.py
"""

import logging

from repro import WorkloadGenerator
from repro.service import OptimizerService, render_prometheus


def show(span, depth: int = 0) -> None:
    attrs = ", ".join(
        f"{key}={value}" for key, value in sorted(span.attributes.items())
    )
    print(
        f"  {'  ' * depth}{span.name:<14s} {span.duration_seconds * 1e3:8.3f} ms"
        f"{'  [' + attrs + ']' if attrs else ''}"
    )
    for child in span.children:
        show(child, depth + 1)


def main() -> None:
    logging.basicConfig(level=logging.WARNING, format="%(name)s: %(message)s")
    service = OptimizerService(cache_capacity=16, slow_log_ms=5.0)
    query = WorkloadGenerator(seed=2026).fixed_shape("clique", 10)

    cold = service.optimize(query.catalog)
    trace = service.traces.get(cold.trace_id)
    print(f"cold request (trace {trace.trace_id}):")
    show(trace.root)
    enumerate_span = trace.find("enumerate")
    print(
        f"  -> enumerate did {enumerate_span.attributes['memo_entries']} "
        f"memo entries / {enumerate_span.attributes['cost_evaluations']} "
        f"cost evaluations"
    )
    print()

    warm = service.optimize(query.catalog)
    trace = service.traces.get(warm.trace_id)
    print(f"warm request (trace {trace.trace_id}, cache_hit={warm.cache_hit}):")
    show(trace.root)
    print()

    print(f"traces retained: {len(service.traces)} (bounded ring)")
    print()

    print("prometheus exposition (excerpt):")
    for line in render_prometheus(service.stats_snapshot()).splitlines():
        if "latency" in line or "requests" in line or "cache" in line:
            print(f"  {line}")


if __name__ == "__main__":
    main()

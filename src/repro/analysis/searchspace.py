"""Search-space profiling: the structure behind Table I.

:func:`profile_search_space` dissects one query graph the way the
paper's introduction does — how many connected subgraphs and ccps exist
per subset size, how wasteful naive generate-and-test would be, and the
"Fortunate Observation" ratio between cost-function calls (#ccp) and
cardinality estimations (#csg).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro import bitset
from repro.enumeration.counting import enumerate_connected_subgraphs
from repro.enumeration.mincutbranch import MinCutBranch
from repro.graph.query_graph import QueryGraph

__all__ = ["SearchSpaceProfile", "profile_search_space"]


@dataclass
class SearchSpaceProfile:
    """Per-size breakdown of one query graph's enumeration space."""

    graph: QueryGraph
    #: size -> number of connected subgraphs of that size.
    csg_by_size: Dict[int, int] = field(default_factory=dict)
    #: size -> total ccps over sets of that size (symmetric once).
    ccp_by_size: Dict[int, int] = field(default_factory=dict)
    #: size -> subsets naive generate-and-test would enumerate.
    ngt_by_size: Dict[int, int] = field(default_factory=dict)

    @property
    def n_csg(self) -> int:
        return sum(self.csg_by_size.values())

    @property
    def n_ccp(self) -> int:
        return sum(self.ccp_by_size.values())

    @property
    def n_ngt(self) -> int:
        return sum(self.ngt_by_size.values())

    @property
    def naive_waste_factor(self) -> float:
        """#ngt / #ccp — how many subsets naive pays per useful pair."""
        return self.n_ngt / self.n_ccp if self.n_ccp else float("inf")

    @property
    def fortunate_observation(self) -> float:
        """#ccp / #csg — cheap cost calls per expensive estimation."""
        return self.n_ccp / self.n_csg if self.n_csg else 0.0

    def render(self) -> str:
        """Plain-text per-size table."""
        lines = [
            f"search space of {self.graph.n_vertices}-relation "
            f"{self.graph.shape_name()} query",
            f"{'size':>4s} {'#csg':>8s} {'#ccp':>10s} {'#ngt':>12s}",
        ]
        for size in sorted(self.csg_by_size):
            lines.append(
                f"{size:>4d} {self.csg_by_size[size]:>8d} "
                f"{self.ccp_by_size.get(size, 0):>10d} "
                f"{self.ngt_by_size.get(size, 0):>12d}"
            )
        lines.append(
            f"total: {self.n_csg} csgs, {self.n_ccp} ccps, {self.n_ngt} "
            f"naive subsets (waste factor {self.naive_waste_factor:.1f}x)"
        )
        return "\n".join(lines)


def profile_search_space(graph: QueryGraph) -> SearchSpaceProfile:
    """Exhaustively profile one (small) query graph's search space.

    Uses MinCutBranch per csg for the ccp counts — emitting exactly the
    valid pairs is precisely what makes this affordable.
    """
    profile = SearchSpaceProfile(graph=graph)
    strategy = MinCutBranch(graph)
    for vertex_set in enumerate_connected_subgraphs(graph):
        size = bitset.popcount(vertex_set)
        profile.csg_by_size[size] = profile.csg_by_size.get(size, 0) + 1
        if size < 2:
            continue
        n_pairs = sum(1 for _ in strategy.partitions(vertex_set))
        profile.ccp_by_size[size] = (
            profile.ccp_by_size.get(size, 0) + n_pairs
        )
        profile.ngt_by_size[size] = (
            profile.ngt_by_size.get(size, 0) + (1 << size) - 2
        )
    return profile

"""Smoke tests: every example script must run cleanly.

The examples are part of the public deliverable; this keeps them from
rotting as the API evolves.  Each runs in a subprocess with the repo's
interpreter; the slow comparison example gets a small size override.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _run(name: str, args=()) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_examples_present():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", [e for e in EXAMPLES if e != "compare_enumerators.py"])
def test_example_runs(name):
    result = _run(name)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must print something"


def test_compare_enumerators_small():
    result = _run("compare_enumerators.py", ["7"])
    assert result.returncode == 0, result.stderr
    assert "agree on plan cost" in result.stdout


def test_quickstart_shows_plan():
    result = _run("quickstart.py")
    assert "optimal C_out cost" in result.stdout
    assert "⋈" in result.stdout

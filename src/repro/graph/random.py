"""Random query graph generation per the paper's workload generator.

Sec. IV-A: "it generates chain, star, cycle, and clique queries as well as
random acyclic and cyclic graphs.  For the latter, edges are randomly added
by selecting two relation's indices using uniformly distributed random
numbers."

Random acyclic graphs are uniform random trees (random Pruefer sequences).
Random cyclic graphs start from a random spanning tree (to guarantee
connectivity, which the cross-product-free search space requires) and then
add extra uniformly random edges until the requested edge count is reached.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.query_graph import QueryGraph

__all__ = [
    "random_acyclic_graph",
    "random_cyclic_graph",
    "random_tree_edges",
    "random_hypergraph",
]


def _rng(seed: Optional[int], rng: Optional[random.Random]) -> random.Random:
    if rng is not None:
        return rng
    return random.Random(seed)


def random_tree_edges(
    n_vertices: int, rng: random.Random
) -> List[Tuple[int, int]]:
    """Return the edges of a uniformly random labelled tree.

    Uses a random Pruefer sequence, which is in bijection with labelled
    trees, so every spanning tree shape is equally likely.
    """
    if n_vertices < 1:
        raise GraphError("need at least one vertex")
    if n_vertices == 1:
        return []
    if n_vertices == 2:
        return [(0, 1)]
    pruefer = [rng.randrange(n_vertices) for _ in range(n_vertices - 2)]
    degree = [1] * n_vertices
    for v in pruefer:
        degree[v] += 1
    edges: List[Tuple[int, int]] = []
    # Classic decoding: repeatedly attach the smallest leaf to the next
    # sequence element.  A simple heap-free O(n^2) scan is fine at the
    # sizes used for join ordering (n <= ~30).
    used = [False] * n_vertices
    for v in pruefer:
        for leaf in range(n_vertices):
            if degree[leaf] == 1 and not used[leaf]:
                edges.append((min(leaf, v), max(leaf, v)))
                used[leaf] = True
                degree[v] -= 1
                degree[leaf] -= 1
                break
    tail = [v for v in range(n_vertices) if not used[v] and degree[v] == 1]
    if len(tail) != 2:
        raise GraphError("internal error decoding Pruefer sequence")
    edges.append((min(tail), max(tail)))
    return edges


def random_acyclic_graph(
    n_vertices: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    exclude_chain_and_star: bool = False,
    max_attempts: int = 1000,
) -> QueryGraph:
    """Generate a random connected acyclic query graph (a random tree).

    With ``exclude_chain_and_star=True`` the generator resamples until the
    tree is neither a chain nor a star, matching the workload of the paper's
    Figure 12 ("random acyclic queries that are neither chain nor star").
    """
    generator = _rng(seed, rng)
    for _ in range(max_attempts):
        graph = QueryGraph(n_vertices, random_tree_edges(n_vertices, generator))
        if not exclude_chain_and_star:
            return graph
        if graph.shape_name() == "tree":
            return graph
    raise GraphError(
        f"could not sample a non-chain non-star tree with {n_vertices} "
        f"vertices in {max_attempts} attempts (too few vertices?)"
    )


def random_cyclic_graph(
    n_vertices: int,
    n_edges: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> QueryGraph:
    """Generate a random connected cyclic query graph with ``n_edges`` edges.

    A random spanning tree guarantees connectivity; the remaining
    ``n_edges - (n_vertices - 1)`` edges are drawn uniformly from the
    missing vertex pairs, per the paper's generator.
    """
    if n_vertices < 3:
        raise GraphError("cyclic graphs need at least 3 vertices")
    min_edges = n_vertices - 1
    max_edges = n_vertices * (n_vertices - 1) // 2
    if not min_edges <= n_edges <= max_edges:
        raise GraphError(
            f"edge count {n_edges} out of range [{min_edges}, {max_edges}] "
            f"for {n_vertices} vertices"
        )
    generator = _rng(seed, rng)
    edges = set(random_tree_edges(n_vertices, generator))
    missing = [
        (u, v)
        for u in range(n_vertices)
        for v in range(u + 1, n_vertices)
        if (u, v) not in edges
    ]
    generator.shuffle(missing)
    extra_needed = n_edges - len(edges)
    edges.update(missing[:extra_needed])
    return QueryGraph(n_vertices, sorted(edges))


def random_hypergraph(
    n_vertices: int,
    n_complex_edges: int = 2,
    max_endpoint_size: int = 3,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
):
    """Generate a random connected join hypergraph.

    A random spanning tree of simple edges guarantees connectivity under
    the recursive hypergraph semantics; ``n_complex_edges`` additional
    hyperedges with endpoint sizes in ``[1, max_endpoint_size]`` (at
    least one endpoint larger than 1) model complex join predicates.
    """
    from repro.graph.hypergraph import Hypergraph

    if n_vertices < 2:
        raise GraphError("a hypergraph workload needs at least 2 vertices")
    generator = _rng(seed, rng)
    edges = [
        (1 << u, 1 << v) for (u, v) in random_tree_edges(n_vertices, generator)
    ]
    for _ in range(n_complex_edges):
        vertices = list(range(n_vertices))
        generator.shuffle(vertices)
        max_u = min(max_endpoint_size, n_vertices - 1)
        u_size = generator.randint(1, max_u)
        v_size = generator.randint(
            1 if u_size > 1 else 2,
            max(1 if u_size > 1 else 2, min(max_endpoint_size, n_vertices - u_size)),
        )
        u_set = sum(1 << x for x in vertices[:u_size])
        v_set = sum(1 << x for x in vertices[u_size:u_size + v_size])
        edges.append((u_set, v_set))
    return Hypergraph(n_vertices, edges)

# Development targets. `make verify` is the PR gate: the full test
# suite plus the service-cache smoke benchmark (which enforces the
# >= 10x warm-cache speedup floor and counter consistency).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-service bench-batch verify

test:
	$(PYTHON) -m pytest -x -q

bench-service:
	$(PYTHON) benchmarks/bench_service_cache.py

# Multi-core speedup demo: process vs. thread batch backends.  Asserts
# the >= 1.5x floor only on multi-core hosts (pass --require-speedup in
# CI); result parity across backends is always enforced.
bench-batch:
	$(PYTHON) benchmarks/bench_batch_parallel.py

verify: test bench-service
	@echo "verify: ok"

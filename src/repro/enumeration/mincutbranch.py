"""MinCutBranch: the paper's branch partitioning algorithm (Sec. III).

The strategy recursively enlarges a connected set ``C`` (starting from an
arbitrary vertex ``t``) by neighbors, and exploits the connected regions
``R_tmp`` returned by child invocations to emit a ccp ``(S \\ R_tmp,
R_tmp)`` exactly when the complement region is connected — never
generating a partition that is not already a valid ccp, and never
checking connectivity explicitly.  Duplicate suppression uses the filter
set ``X`` (line 24's disjointness test); symmetric pairs are emitted once
because ``t`` can never appear in the emitted right side.

The implementation is a line-by-line transcription of Figures 4, 5 and 6
onto bitsets:

* ``N_L`` — unprocessed neighbors of the vertex last added (``L``),
* ``N_X`` — neighbors of ``L`` already in the filter set ``X`` that still
  need their region computed (via the cheaper ``Reachable``),
* ``N_B`` — other neighbors of ``C``, explored only when they turn out to
  lie in a returned region (case 1).

The two optimization techniques of Sec. III-C (lines 20-23 and 25-26) can
be disabled via ``use_optimizations=False`` for the ablation benchmark;
the emitted ccp set is identical either way, only the amount of internal
work changes.

Where the pseudocode says "an element of" a set, this implementation
always takes the lowest-indexed vertex, making runs deterministic.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro import bitset
from repro.enumeration.base import PartitioningStrategy
from repro.errors import GraphError

__all__ = ["MinCutBranch"]


class MinCutBranch(PartitioningStrategy):
    """Branch partitioning (PARTITION_MinCutBranch, Figs. 4-6)."""

    name = "mincutbranch"

    def __init__(self, graph, use_optimizations: bool = True):
        super().__init__(graph)
        self.use_optimizations = use_optimizations

    # ------------------------------------------------------------------

    def partitions(self, vertex_set: int) -> Iterator[Tuple[int, int]]:
        """Return an iterator over ``P_ccp_sym(S)``.

        Pairs come out as ``(S \\ R_tmp, R_tmp)``.  The recursion emits
        through a callback and the pairs are collected eagerly: recursive
        generators would pay O(recursion depth) per emitted pair in
        CPython's ``yield from`` delegation, defeating the O(1)-per-ccp
        design the paper proves.
        """
        if bitset.popcount(vertex_set) < 2:
            return iter(())
        emitted = []
        # Fig. 4: t <- arbitrary vertex of S; we take the lowest index.
        start = vertex_set & -vertex_set
        start_neighbors = (
            self.graph.neighbors_of_vertex(start.bit_length() - 1)
            & vertex_set
            & ~start
        )
        self._mincut_branch(
            vertex_set, start, 0, start, start_neighbors, emitted.append
        )
        self.stats.emitted += len(emitted)
        return iter(emitted)

    # ------------------------------------------------------------------

    def _mincut_branch(
        self,
        s_set: int,
        c_set: int,
        x_set: int,
        l_set: int,
        c_neighbors: int,
        emit,
    ) -> int:
        """MINCUTBRANCH (Fig. 5).  Returns the region ``R | L``.

        ``emit`` receives each discovered ccp as an ``(S1, S2)`` tuple; the
        return value is the maximal connected region of ``S \\ C``
        containing ``L``.  ``c_neighbors`` is the caller-maintained
        ``(N(C) ∩ S) \\ C``: since ``C`` grows one vertex per recursion
        level, the neighborhood is extended incrementally by one adjacency
        lookup instead of being recomputed from the whole of ``C`` — this
        is what keeps the per-ccp work constant in practice, mirroring the
        paper's per-vertex neighbor arrays (Sec. IV-A).
        """
        graph = self.graph
        adjacency = graph.neighbors_of_vertex
        stats = self.stats
        stats.calls += 1

        neighbors_of_l = (
            adjacency(l_set.bit_length() - 1) & s_set & ~c_set
        )
        n_l = neighbors_of_l & ~x_set                       # line 3
        n_x = neighbors_of_l & x_set                        # line 4
        n_b = c_neighbors & ~n_l & ~x_set                   # line 5

        r_set = 0
        r_tmp = 0
        x_prime = x_set
        use_optimizations = self.use_optimizations

        loop_count = 0
        while n_l or n_x or (n_b & r_tmp):                  # line 6
            loop_count += 1
            in_region = (n_b | n_l) & r_tmp
            if in_region:                                   # case (1), line 7
                v_bit = in_region & -in_region              # line 8
                child_c = c_set | v_bit
                child_neighbors = (
                    c_neighbors | (adjacency(v_bit.bit_length() - 1) & s_set)
                ) & ~child_c
                # The region was already computed and its partition already
                # emitted; the child call only explores nested splits.
                self._mincut_branch(
                    s_set, child_c, x_prime, v_bit, child_neighbors, emit
                )                                           # line 9
                n_l &= ~v_bit                               # line 10
                n_b &= ~v_bit                               # line 11
            else:
                x_prime = x_set                             # line 12
                if n_l:                                     # case (2), line 13
                    v_bit = n_l & -n_l                      # line 14
                    child_c = c_set | v_bit
                    child_neighbors = (
                        c_neighbors
                        | (adjacency(v_bit.bit_length() - 1) & s_set)
                    ) & ~child_c
                    r_tmp = self._mincut_branch(
                        s_set, child_c, x_prime, v_bit, child_neighbors, emit
                    )                                       # line 15
                    n_l &= ~v_bit                           # line 16
                else:                                       # case (3), line 17
                    v_bit = n_x & -n_x
                    r_tmp = self._reachable(
                        s_set, c_set | v_bit, v_bit
                    )                                       # line 18
                n_x &= ~r_tmp                               # line 19
                if use_optimizations and (r_tmp & x_set):   # lines 20-23
                    n_x |= n_l & ~r_tmp
                    n_l &= r_tmp
                    n_b &= r_tmp
                if (s_set & ~r_tmp) & x_set:                # line 24
                    if use_optimizations:                   # lines 25-26
                        n_l &= ~r_tmp
                        n_b &= ~r_tmp
                else:
                    emit((s_set & ~r_tmp, r_tmp))           # line 27
                r_set |= r_tmp                              # line 28
            x_prime |= v_bit                                # line 29
        stats.loop_iterations += loop_count
        return r_set | l_set                                # line 30

    # ------------------------------------------------------------------

    def _reachable(self, s_set: int, c_set: int, l_set: int) -> int:
        """REACHABLE (Fig. 6): region of ``S \\ C`` reachable from ``L``.

        Returns the maximal connected vertex set ``R`` with
        ``L ⊆ R ⊆ (S \\ C) | L`` — a plain bitmask flood fill, cheaper
        than a full MinCutBranch descent, used for case (3) neighbors
        whose partitions were already emitted.
        """
        graph = self.graph
        stats = self.stats
        stats.reachable_calls += 1
        region = l_set                                      # line 1
        frontier = (
            graph.neighbors_of_vertex(l_set.bit_length() - 1)
            & s_set
            & ~c_set
        )                                                   # line 2
        while frontier:                                     # line 3
            stats.reachable_iterations += 1
            region |= frontier                              # line 4
            frontier = (
                graph.neighborhood(frontier) & s_set & ~c_set & ~region
            )                                               # line 5
        return region                                       # line 6


def partition_mincut_branch(graph, vertex_set: int):
    """Convenience wrapper: one-shot iterator over ``P_ccp_sym(S)``.

    Raises :class:`GraphError` when the set does not induce a connected
    subgraph (a disconnected set has no ccps by definition; surfacing it
    loudly catches caller bugs).
    """
    if not graph.is_connected(vertex_set):
        raise GraphError(
            f"{bitset.format_set(vertex_set)} does not induce a connected "
            "subgraph; ccps are only defined for connected sets"
        )
    return MinCutBranch(graph).partitions(vertex_set)

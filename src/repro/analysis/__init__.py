"""Analytic formulas, complexity predictions, and EXPLAIN reporting."""

from repro.analysis.explain import explain, explain_comparison
from repro.analysis.formulas import (
    csg_count,
    ccp_count,
    ngt_count,
    table1_row,
    mcb_counters_chain,
    mcb_counters_cycle,
    mcb_clique_total_work,
    mcl_clique_total_work,
    mcl_per_ccp_clique,
    mcb_per_ccp_clique,
)

__all__ = [
    "explain",
    "explain_comparison",
    "csg_count",
    "ccp_count",
    "ngt_count",
    "table1_row",
    "mcb_counters_chain",
    "mcb_counters_cycle",
    "mcb_clique_total_work",
    "mcl_clique_total_work",
    "mcl_per_ccp_clique",
    "mcb_per_ccp_clique",
]

"""Synthetic data generation realizing a catalog's statistics.

For every join edge ``(u, v)`` with selectivity ``s`` both relations get
an integer key column drawn uniformly from a domain of size
``round(1/s)``: two uniform, independent columns over a domain of size
``d`` join with expected selectivity exactly ``1/d``.  Because columns
for different edges are independent, the System-R independence
assumption the estimator uses *holds exactly in expectation* on this
data — so measured intermediate sizes converge to the estimates, which
is what :func:`repro.exec.executor.validate_estimates` checks.

Cardinalities can be downscaled (``max_rows``) for laptop-sized runs;
the generator then returns a matching *scaled catalog* whose
cardinalities and (rounded) selectivities describe the data actually
produced, so estimate comparisons stay apples-to-apples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.catalog.statistics import Catalog, Relation
from repro.errors import CatalogError

__all__ = ["SyntheticTable", "SyntheticDatabase", "generate_database"]


@dataclass
class SyntheticTable:
    """One generated base table: named integer columns of equal length."""

    name: str
    n_rows: int
    columns: Dict[str, List[int]] = field(default_factory=dict)

    def column(self, name: str) -> List[int]:
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}"
            ) from None


@dataclass
class SyntheticDatabase:
    """Generated tables plus the join-column wiring per graph edge."""

    tables: List[SyntheticTable]
    #: edge (u, v) -> column name used on both endpoint tables.
    edge_columns: Dict[Tuple[int, int], str]
    #: catalog describing the generated data (scaled cards, realized sels).
    scaled_catalog: Catalog

    def table(self, vertex: int) -> SyntheticTable:
        return self.tables[vertex]


def _zipf_sampler(domain: int, skew: float, rng: random.Random):
    """Return a sampler over ``range(domain)`` with Zipf(s=skew) weights.

    ``skew = 0`` degenerates to uniform.  Implemented with cumulative
    weights and binary search (no numpy dependency).
    """
    import bisect

    weights = [1.0 / (rank + 1) ** skew for rank in range(domain)]
    cumulative = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)

    def sample() -> int:
        return bisect.bisect_left(cumulative, rng.random() * total)

    return sample


def generate_database(
    catalog: Catalog,
    max_rows: int = 2000,
    seed: Optional[int] = 0,
    rng: Optional[random.Random] = None,
    skew: float = 0.0,
) -> SyntheticDatabase:
    """Generate synthetic tables realizing ``catalog``'s statistics.

    Cardinalities above ``max_rows`` are scaled down proportionally (one
    global factor, preserving relative sizes).  Every edge's selectivity
    is realized as ``1 / round(1/s)``; the returned
    ``scaled_catalog`` records these actual values.

    ``skew`` draws join-key values from a Zipf(s=skew) distribution
    instead of uniform.  With skew the *true* join selectivity exceeds
    the uniform-independence estimate (heavy hitters match each other
    disproportionately), so the optimizer's estimates systematically
    undercount — the classic failure mode of the independence assumption
    that :func:`repro.exec.executor.validate_estimates` then quantifies.
    """
    if skew < 0:
        raise CatalogError("skew must be non-negative")
    generator = rng if rng is not None else random.Random(seed)
    graph = catalog.graph
    biggest = max(r.cardinality for r in catalog.relations)
    scale = min(1.0, max_rows / biggest)

    row_counts = [
        max(1, round(catalog.cardinality(v) * scale))
        for v in range(graph.n_vertices)
    ]

    edge_columns: Dict[Tuple[int, int], str] = {}
    realized_selectivities: Dict[Tuple[int, int], float] = {}
    tables = [
        SyntheticTable(name=catalog.relations[v].name, n_rows=row_counts[v])
        for v in range(graph.n_vertices)
    ]
    for index, (u, v) in enumerate(graph.edges):
        selectivity = catalog.selectivity(u, v)
        domain = max(1, round(1.0 / selectivity))
        column = f"k{index}"
        edge_columns[(u, v)] = column
        realized_selectivities[(u, v)] = 1.0 / domain
        if skew > 0:
            sample = _zipf_sampler(domain, skew, generator)
            tables[u].columns[column] = [
                sample() for _ in range(row_counts[u])
            ]
            tables[v].columns[column] = [
                sample() for _ in range(row_counts[v])
            ]
        else:
            tables[u].columns[column] = [
                generator.randrange(domain) for _ in range(row_counts[u])
            ]
            tables[v].columns[column] = [
                generator.randrange(domain) for _ in range(row_counts[v])
            ]

    scaled_catalog = Catalog(
        graph,
        [
            Relation(name=catalog.relations[v].name, cardinality=row_counts[v])
            for v in range(graph.n_vertices)
        ],
        realized_selectivities,
    )
    return SyntheticDatabase(
        tables=tables,
        edge_columns=edge_columns,
        scaled_catalog=scaled_catalog,
    )

"""Naive generate-and-test partitioning (Fig. 3).

For a set ``S`` all ``2^|S| - 2`` proper non-empty subsets are enumerated
(Vance & Maier's rapid subset walk); a subset qualifies as a ccp when both
it and its complement induce connected subgraphs and the symmetric-pair
convention holds (highest-indexed relation stays in the complement).

Instantiating the generic top-down driver with this strategy yields the
paper's MEMOIZATIONBASIC — the baseline whose "depressing results"
(Sec. IV-D) motivate real partitioning algorithms on sparse graphs, while
on cliques (where almost every subset qualifies) it is surprisingly
competitive.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro import bitset
from repro.enumeration.base import PartitioningStrategy

__all__ = ["NaivePartitioning"]


class NaivePartitioning(PartitioningStrategy):
    """PARTITION_naive: generate and test every subset."""

    name = "naive"

    def partitions(self, vertex_set: int) -> Iterator[Tuple[int, int]]:
        graph = self.graph
        stats = self.stats
        stats.calls += 1
        highest = 1 << (vertex_set.bit_length() - 1)
        for subset in bitset.iter_proper_nonempty_subsets(vertex_set):
            stats.subsets_generated += 1
            if subset & highest:
                # Symmetric twin: the highest-indexed relation must stay
                # in the complement (Fig. 3 line 2's max_index test).
                continue
            complement = vertex_set & ~subset
            stats.connectivity_tests += 1
            if not graph.is_connected(subset):
                continue
            stats.connectivity_tests += 1
            if not graph.is_connected(complement):
                continue
            # Connectedness of S ensures the two sides are adjacent only
            # when S itself is connected *and* both halves are connected
            # covers of S; an explicit adjacency check is still performed
            # for graphs where callers pass arbitrary subsets.
            if graph.neighborhood(subset) & complement:
                stats.emitted += 1
                yield (subset, complement)

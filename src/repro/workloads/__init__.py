"""Realistic benchmark workloads built on the schema front end."""

from repro.workloads.joblite import (
    JOB_QUERIES,
    job_database,
    job_query,
    job_query_names,
)
from repro.workloads.ssb import (
    SSB_QUERIES,
    ssb_database,
    ssb_query,
    ssb_query_names,
)
from repro.workloads.tpch import (
    TPCH_QUERIES,
    tpch_database,
    tpch_query,
    tpch_query_names,
)

__all__ = [
    "tpch_database",
    "tpch_query",
    "tpch_query_names",
    "TPCH_QUERIES",
    "ssb_database",
    "ssb_query",
    "ssb_query_names",
    "SSB_QUERIES",
    "job_database",
    "job_query",
    "job_query_names",
    "JOB_QUERIES",
]

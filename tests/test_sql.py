"""Tests for the SQL front end."""

import math

import pytest

from repro.frontend import Database
from repro.frontend.sql import SqlError, parse_select


def _db() -> Database:
    db = Database("shop")
    db.add_table("orders", 1_000_000, {"order_id": 1_000_000, "cust_id": 100_000})
    db.add_table("customer", 100_000, {"cust_id": 100_000, "nation_id": 25})
    db.add_table("nation", 25, {"nation_id": 25, "name": 25})
    db.add_foreign_key("orders", "cust_id", "customer", "cust_id")
    db.add_foreign_key("customer", "nation_id", "nation", "nation_id")
    return db


class TestBasicParsing:
    def test_two_table_join(self):
        catalog = parse_select(
            _db(),
            "SELECT * FROM orders o, customer c WHERE o.cust_id = c.cust_id",
        ).build_catalog()
        assert catalog.graph.n_vertices == 2
        assert catalog.graph.n_edges == 1
        assert math.isclose(catalog.selectivity(0, 1), 1.0 / 100_000)

    def test_aliases_with_as(self):
        catalog = parse_select(
            _db(),
            "SELECT * FROM orders AS o, customer AS c "
            "WHERE o.cust_id = c.cust_id",
        ).build_catalog()
        assert catalog.relation_names() == ["o", "c"]

    def test_tables_without_alias(self):
        catalog = parse_select(
            _db(),
            "SELECT * FROM orders, customer "
            "WHERE orders.cust_id = customer.cust_id",
        ).build_catalog()
        assert catalog.relation_names() == ["orders", "customer"]

    def test_three_way_chain(self):
        builder = parse_select(
            _db(),
            """
            SELECT o.order_id FROM orders o, customer c, nation n
            WHERE o.cust_id = c.cust_id AND c.nation_id = n.nation_id
            """,
        )
        result = builder.optimize()
        result.plan.validate()
        assert result.plan.n_joins() == 2

    def test_no_where_clause(self):
        catalog = parse_select(_db(), "SELECT * FROM orders o").build_catalog()
        assert catalog.graph.n_vertices == 1

    def test_case_insensitive_keywords(self):
        catalog = parse_select(
            _db(),
            "select * from orders o, customer c where o.cust_id = c.cust_id",
        ).build_catalog()
        assert catalog.graph.n_edges == 1


class TestSelections:
    def test_equality_constant_scales_cardinality(self):
        catalog = parse_select(
            _db(),
            "SELECT * FROM nation n WHERE n.name = 'GERMANY'",
        ).build_catalog()
        assert math.isclose(catalog.cardinality(0), 1.0)  # 25 / 25

    def test_range_constant_uses_one_third(self):
        catalog = parse_select(
            _db(),
            "SELECT * FROM orders o WHERE o.order_id > 100",
        ).build_catalog()
        assert math.isclose(catalog.cardinality(0), 1_000_000 / 3.0)

    def test_not_equals(self):
        catalog = parse_select(
            _db(),
            "SELECT * FROM nation n WHERE n.nation_id <> 7",
        ).build_catalog()
        assert math.isclose(catalog.cardinality(0), 25 * (1 - 1 / 25))

    def test_filters_compose_with_joins(self):
        catalog = parse_select(
            _db(),
            """
            SELECT * FROM orders o, customer c
            WHERE o.cust_id = c.cust_id AND c.nation_id = 3
            """,
        ).build_catalog()
        assert math.isclose(catalog.cardinality(1), 100_000 / 25)

    def test_multiple_filters_multiply(self):
        catalog = parse_select(
            _db(),
            "SELECT * FROM orders o "
            "WHERE o.order_id > 5 AND o.cust_id = 9",
        ).build_catalog()
        assert math.isclose(
            catalog.cardinality(0), 1_000_000 / 3.0 / 100_000
        )


class TestErrors:
    def test_or_rejected(self):
        with pytest.raises(SqlError):
            parse_select(
                _db(),
                "SELECT * FROM orders o, customer c "
                "WHERE o.cust_id = c.cust_id OR o.order_id = 1",
            )

    def test_non_equi_join_rejected(self):
        with pytest.raises(SqlError):
            parse_select(
                _db(),
                "SELECT * FROM orders o, customer c "
                "WHERE o.cust_id < c.cust_id",
            )

    def test_unknown_table(self):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            parse_select(_db(), "SELECT * FROM ghosts g")

    def test_empty_select_list(self):
        with pytest.raises(SqlError):
            parse_select(_db(), "SELECT FROM orders o")

    def test_garbage_rejected(self):
        with pytest.raises(SqlError):
            parse_select(_db(), "SELECT * FROM orders o; DROP TABLE orders")

    def test_missing_from(self):
        with pytest.raises(SqlError):
            parse_select(_db(), "SELECT *")

    def test_empty_text(self):
        with pytest.raises(SqlError):
            parse_select(_db(), "   ")

    def test_bare_column_in_predicate(self):
        with pytest.raises(SqlError):
            parse_select(
                _db(), "SELECT * FROM orders o WHERE cust_id = 5"
            )


class TestEndToEnd:
    def test_parse_optimize_execute_pipeline(self):
        # SQL -> catalog -> plan -> (tiny) synthetic execution.
        from repro.exec import Executor, generate_database

        builder = parse_select(
            _db(),
            """
            SELECT * FROM orders o, customer c, nation n
            WHERE o.cust_id = c.cust_id AND c.nation_id = n.nation_id
            """,
        )
        catalog = builder.build_catalog()
        database = generate_database(catalog, max_rows=200, seed=1)
        plan = builder.optimize().plan
        # Re-plan on the scaled catalog so cardinalities match the data.
        from repro import optimize_query

        scaled_plan = optimize_query(database.scaled_catalog).plan
        result = Executor(database).execute(scaled_plan)
        assert result.n_rows >= 0
        assert len(result.intermediate_sizes) == 2

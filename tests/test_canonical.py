"""Tests for degree-refinement canonical labeling (repro.graph.canonical)."""

import random

import pytest

from repro import (
    QueryGraph,
    chain_graph,
    clique_graph,
    cycle_graph,
    grid_graph,
    random_acyclic_graph,
    random_cyclic_graph,
    star_graph,
)
from repro.errors import GraphError
from repro.graph.canonical import canonical_form, canonical_signature, refine_colors


def shuffled(graph: QueryGraph, seed: int) -> QueryGraph:
    permutation = list(range(graph.n_vertices))
    random.Random(seed).shuffle(permutation)
    return graph.relabelled(permutation)


class TestRefinement:
    def test_chain_endpoints_separate_from_middle(self):
        colors = refine_colors(chain_graph(5), [0] * 5)
        # 0-1-2-3-4: endpoints, their neighbors, and the center all split.
        assert colors[0] == colors[4]
        assert colors[1] == colors[3]
        assert len(set(colors)) == 3

    def test_star_hub_isolated(self):
        colors = refine_colors(star_graph(6), [0] * 6)
        hub_color = colors[0]
        assert all(c != hub_color for c in colors[1:])
        assert len(set(colors[1:])) == 1

    def test_clique_stays_monochrome(self):
        assert len(set(refine_colors(clique_graph(7), [0] * 7))) == 1

    def test_initial_colors_respected(self):
        graph = cycle_graph(6)
        colors = refine_colors(graph, [0, 1, 0, 1, 0, 1])
        assert colors[0] == colors[2] == colors[4]
        assert colors[1] == colors[3] == colors[5]
        assert colors[0] != colors[1]

    def test_wrong_color_count_rejected(self):
        with pytest.raises(GraphError):
            refine_colors(chain_graph(4), [0, 0])


class TestCanonicalForm:
    @pytest.mark.parametrize("builder,n", [
        (chain_graph, 9),
        (star_graph, 9),
        (cycle_graph, 9),
        (clique_graph, 9),
        (chain_graph, 14),
        (clique_graph, 14),
    ])
    def test_relabeling_invariance_fixed_shapes(self, builder, n):
        graph = builder(n)
        _, edges = canonical_form(graph)
        for seed in range(6):
            _, relabeled_edges = canonical_form(shuffled(graph, seed))
            assert relabeled_edges == edges

    @pytest.mark.parametrize("seed", range(6))
    def test_relabeling_invariance_random_graphs(self, seed):
        for graph in (
            random_cyclic_graph(11, 18, seed=seed),
            random_acyclic_graph(11, seed=seed),
        ):
            _, edges = canonical_form(graph)
            _, relabeled_edges = canonical_form(shuffled(graph, seed + 100))
            assert relabeled_edges == edges

    def test_order_is_permutation_and_edges_match(self):
        graph = grid_graph(3, 3)
        order, edges = canonical_form(graph)
        assert sorted(order) == list(range(9))
        position = {vertex: p for p, vertex in enumerate(order)}
        expected = sorted(
            (min(position[u], position[v]), max(position[u], position[v]))
            for (u, v) in graph.edges
        )
        assert list(edges) == expected

    def test_single_vertex(self):
        order, edges = canonical_form(QueryGraph(1, []))
        assert order == (0,)
        assert edges == ()

    def test_initial_colors_break_symmetry(self):
        # A 4-cycle with one distinguished vertex: the distinguished vertex
        # must land in the same canonical position for every relabeling.
        graph = cycle_graph(4)
        order, _ = canonical_form(graph, initial_colors=[0, 1, 1, 1])
        relabeled = graph.relabelled([2, 3, 0, 1])
        r_order, _ = canonical_form(relabeled, initial_colors=[1, 1, 0, 1])
        assert order.index(0) == r_order.index(2)


class TestSignature:
    def test_isomorphic_graphs_share_signature(self):
        graph = random_cyclic_graph(10, 16, seed=3)
        assert (
            canonical_signature(graph)
            == canonical_signature(shuffled(graph, 5))
            == graph.canonical_signature()
        )

    def test_non_isomorphic_graphs_differ(self):
        signatures = {
            canonical_signature(g)
            for g in (
                chain_graph(6),
                star_graph(6),
                cycle_graph(6),
                clique_graph(6),
                chain_graph(7),
            )
        }
        assert len(signatures) == 5

    def test_color_vector_participates(self):
        graph = chain_graph(4)
        plain = canonical_signature(graph)
        colored = canonical_signature(graph, initial_colors=[0, 1, 1, 0])
        other = canonical_signature(graph, initial_colors=[1, 0, 0, 1])
        assert plain != colored
        assert colored != other

    def test_query_graph_method_caches(self):
        graph = chain_graph(8)
        first = graph.canonical_signature()
        assert graph.canonical_signature() is first  # cached string object
        order, edges = graph.canonical_form()
        assert sorted(order) == list(range(8))
        assert len(edges) == 7

#!/usr/bin/env python
"""Batch-execution benchmark: serial vs. thread vs. process backends.

CPython's GIL serializes CPU-bound enumeration across threads, so the
threaded ``optimize_batch`` backend cannot beat serial wall-clock on the
paper's hot path no matter how many workers it has.  The process backend
(``executor="process"``) ships each request to a worker process through
:mod:`repro.serialize` and genuinely uses one core per worker.  This
benchmark drives an identical batch of distinct clique (and optionally
cycle) queries through all three backends on fresh services — no cache
effects — and reports wall-clock plus the process-over-thread speedup.

On a multi-core host the process backend must be at least 1.5x faster
than the threaded one for a >= 8-item batch of clique-12 queries; pass
``--require-speedup`` to turn that floor into the exit status (it is
skipped automatically on single-core machines, where no parallel
speedup is physically possible).  Result parity across backends is
always enforced.

Run:  python benchmarks/bench_batch_parallel.py [--n 12] [--count 8]
      [--workers N] [--shape clique] [--algorithm dpccp]
      [--require-speedup]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.catalog.workload import WorkloadGenerator
from repro.optimizer.api import OptimizationRequest
from repro.service import OptimizerService

SPEEDUP_FLOOR = 1.5  # acceptance: process >= 1.5x over thread (multi-core)


def build_requests(shape: str, n: int, count: int, algorithm: str):
    """Return ``count`` distinct same-shape requests (distinct statistics)."""
    requests = []
    for seed in range(count):
        instance = WorkloadGenerator(seed=20110411 + seed).fixed_shape(shape, n)
        requests.append(
            OptimizationRequest(
                query=instance, algorithm=algorithm, tag=f"{shape}-{seed}"
            )
        )
    return requests


def run_backend(executor: str, requests, workers: int):
    """Run the batch on a fresh service; return (wall_seconds, results)."""
    service = OptimizerService()
    started = time.perf_counter()
    results = service.optimize_batch(
        requests, workers=workers, executor=executor
    )
    wall = time.perf_counter() - started
    failed = [r.tag for r in results if not r.ok]
    if failed:
        raise SystemExit(f"FAIL: {executor} backend failed items: {failed}")
    return wall, results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shape", default="clique", help="query graph shape")
    parser.add_argument("--n", type=int, default=12, help="relations per query")
    parser.add_argument("--count", type=int, default=8, help="batch size")
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="pool width (0 = one per detected core, capped at 8)",
    )
    parser.add_argument(
        "--algorithm",
        default="dpccp",
        help="registry algorithm (dpccp carries the smallest clique constant)",
    )
    parser.add_argument(
        "--require-speedup",
        action="store_true",
        help=f"exit non-zero unless process >= {SPEEDUP_FLOOR}x over thread "
        "(skipped on single-core hosts)",
    )
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    workers = args.workers if args.workers > 0 else min(8, cores)
    requests = build_requests(args.shape, args.n, args.count, args.algorithm)
    print(
        f"batch parallel bench: {args.count} x {args.shape}-{args.n} "
        f"({args.algorithm}), workers={workers}, cores={cores}"
    )

    walls = {}
    baseline = None
    for executor in ("serial", "thread", "process"):
        wall, results = run_backend(executor, requests, workers)
        walls[executor] = wall
        costs = [round(r.cost, 6) for r in results]
        if baseline is None:
            baseline = costs
        elif costs != baseline:
            print(
                f"FAIL: {executor} backend returned different plan costs",
                file=sys.stderr,
            )
            return 1
        print(f"  {executor:8s} {wall:8.2f}s")

    speedup = walls["thread"] / max(walls["process"], 1e-9)
    print(f"process speedup over thread: {speedup:.2f}x")
    if cores < 2:
        print("single-core host: parallel speedup not applicable, floor skipped")
        return 0
    if args.require_speedup and speedup < SPEEDUP_FLOOR:
        print(
            f"FAIL: process speedup {speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR}x floor on a {cores}-core host",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: backends agree on all {args.count} plans"
        + (
            f"; process cleared the {SPEEDUP_FLOOR}x floor"
            if args.require_speedup
            else ""
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

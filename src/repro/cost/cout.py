"""The C_out cost model used in the paper's evaluation (Sec. IV-A).

"Since, due to the fact that we ignore pruning, the cost calculation is
immaterial for our investigation, we simply use C_out.  It sums up the
cardinalities of the intermediate results."

The local cost of a join is therefore just the output cardinality; the
accumulated plan cost is the sum of all intermediate result sizes.
"""

from __future__ import annotations

from typing import Tuple

from repro.cost.base import CostModel

__all__ = ["CoutCostModel"]


class CoutCostModel(CostModel):
    """C_out: cost of a join = cardinality of its result."""

    name = "cout"
    symmetric = True

    def join_cost(
        self, left_card: float, right_card: float, output_card: float
    ) -> Tuple[float, str]:
        return output_card, "join"

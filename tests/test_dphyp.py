"""Tests for hypergraph optimization: DPhyp, HyperDPsub, TopDownHypBasic."""

import math

import pytest

from repro import (
    DPhyp,
    HyperCatalog,
    HyperDPsub,
    Hypergraph,
    Relation,
    TopDownHypBasic,
    attach_random_hyper_statistics,
    attach_random_statistics,
    optimize_query,
    random_hypergraph,
    uniform_hyper_statistics,
)
from repro.errors import CatalogError, OptimizationError

from .conftest import random_connected_graph


def _lift_catalog(catalog):
    """Lift a plain-graph Catalog into an equivalent HyperCatalog."""
    hypergraph = Hypergraph.from_query_graph(catalog.graph)
    selectivities = {}
    for edge in hypergraph.edges:
        u = edge.u.bit_length() - 1
        v = edge.v.bit_length() - 1
        selectivities[edge] = catalog.selectivity(u, v)
    return HyperCatalog(hypergraph, catalog.relations, selectivities)


class TestHyperCatalog:
    def test_requires_all_edges(self):
        hg = Hypergraph(2, [(0b1, 0b10)])
        with pytest.raises(CatalogError):
            HyperCatalog(hg, [Relation("a", 1.0), Relation("b", 1.0)], {})

    def test_rejects_unknown_edge(self):
        from repro.graph.hypergraph import Hyperedge

        hg = Hypergraph(3, [(0b1, 0b10)])
        relations = [Relation(f"R{i}", 1.0) for i in range(3)]
        with pytest.raises(CatalogError):
            HyperCatalog(
                hg,
                relations,
                {Hyperedge(0b1, 0b10): 0.5, Hyperedge(0b10, 0b100): 0.5},
            )

    def test_estimate_includes_covered_edges_only(self):
        hg = Hypergraph(3, [(0b001, 0b010), (0b001, 0b110)])
        catalog = uniform_hyper_statistics(hg, cardinality=10.0, selectivity=0.5)
        assert math.isclose(catalog.estimate(0b011), 10 * 10 * 0.5)
        assert math.isclose(catalog.estimate(0b111), 1000 * 0.5 * 0.5)

    def test_selectivity_between_applies_completed_edges(self):
        hg = Hypergraph(3, [(0b001, 0b010), (0b001, 0b110)])
        catalog = uniform_hyper_statistics(hg, selectivity=0.5)
        # Joining {0,1} with {2} completes the hyperedge ({0},{1,2}).
        assert math.isclose(catalog.selectivity_between(0b011, 0b100), 0.5)
        # Joining {0} with {1}: only the simple edge applies.
        assert math.isclose(catalog.selectivity_between(0b001, 0b010), 0.5)

    def test_split_invariance(self):
        for seed in range(10):
            hg = random_hypergraph(6, n_complex_edges=2, seed=seed)
            catalog = attach_random_hyper_statistics(hg, seed=seed)
            full = catalog.estimate(hg.all_vertices)
            for left in range(1, hg.all_vertices):
                right = hg.all_vertices ^ left
                if right == 0:
                    continue
                combined = (
                    catalog.estimate(left)
                    * catalog.estimate(right)
                    * catalog.selectivity_between(left, right)
                )
                assert math.isclose(combined, full, rel_tol=1e-9)
                break


class TestDPhypOnPlainGraphs:
    def test_matches_plain_graph_optimizers(self, rng):
        for _ in range(20):
            graph = random_connected_graph(rng, max_vertices=7)
            catalog = attach_random_statistics(graph, rng=rng)
            expected = optimize_query(catalog, algorithm="dpsub").cost
            lifted = _lift_catalog(catalog)
            assert math.isclose(
                DPhyp(lifted).optimize().cost, expected, rel_tol=1e-9
            )

    def test_pair_count_matches_dpccp(self, rng):
        from repro import DPccp

        for _ in range(10):
            graph = random_connected_graph(rng, max_vertices=7)
            catalog = attach_random_statistics(graph, rng=rng)
            dpccp = DPccp(catalog)
            dpccp.optimize()
            dphyp = DPhyp(_lift_catalog(catalog))
            dphyp.optimize()
            assert dphyp.ccps_processed == dpccp.ccps_processed


class TestDPhypOnHypergraphs:
    def test_agrees_with_oracles(self):
        for seed in range(25):
            hg = random_hypergraph(6, n_complex_edges=2, seed=seed)
            catalog = attach_random_hyper_statistics(hg, seed=seed)
            reference = HyperDPsub(catalog).optimize()
            dphyp_plan = DPhyp(catalog).optimize()
            topdown_plan = TopDownHypBasic(catalog).optimize()
            assert math.isclose(
                dphyp_plan.cost, reference.cost, rel_tol=1e-9
            ), (seed, hg)
            assert math.isclose(
                topdown_plan.cost, reference.cost, rel_tol=1e-9
            ), (seed, hg)
            dphyp_plan.validate()
            topdown_plan.validate()

    def test_hyperedge_forces_bushy_plan(self):
        # R0-R1 and R2-R3 simple; predicate over ({0,1}, {2,3}): the only
        # valid plans join the two pairs first -> necessarily bushy.
        hg = Hypergraph(4, [(0b0001, 0b0010), (0b0100, 0b1000),
                            (0b0011, 0b1100)])
        catalog = uniform_hyper_statistics(hg)
        plan = DPhyp(catalog).optimize()
        assert not plan.is_left_deep()
        assert plan.left.vertex_set in (0b0011, 0b1100)

    def test_disconnected_hypergraph_rejected(self):
        hg = Hypergraph(3, [(0b001, 0b110)])  # not connected (see substrate tests)
        catalog = uniform_hyper_statistics(hg)
        for optimizer_cls in (DPhyp, HyperDPsub, TopDownHypBasic):
            with pytest.raises(OptimizationError):
                optimizer_cls(catalog).optimize()

    def test_memo_entries_are_connected_sets_only(self):
        for seed in range(5):
            hg = random_hypergraph(6, n_complex_edges=2, seed=seed)
            catalog = attach_random_hyper_statistics(hg, seed=seed)
            optimizer = DPhyp(catalog)
            optimizer.optimize()
            for entry in optimizer.builder.memo.entries():
                assert hg.is_connected(entry.vertex_set), (seed, entry)

    def test_dphyp_visits_each_pair_once(self):
        for seed in range(8):
            hg = random_hypergraph(6, n_complex_edges=2, seed=seed)
            catalog = attach_random_hyper_statistics(hg, seed=seed)
            dphyp = DPhyp(catalog)
            dphyp.optimize()
            oracle = TopDownHypBasic(catalog)
            oracle.optimize()
            assert dphyp.ccps_processed == oracle.partitions_emitted

    def test_two_relations(self):
        hg = Hypergraph(2, [(0b1, 0b10)])
        plan = DPhyp(uniform_hyper_statistics(hg)).optimize()
        assert plan.n_joins() == 1

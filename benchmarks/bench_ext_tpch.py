"""Extension bench: the TPC-H-shaped workload.

Optimizes the join subgraphs of the modelled TPC-H queries with every
enumerator — realistic FK selectivities and local filters instead of
the synthetic Gaussian statistics, including the cyclic Q5/Q9 graphs
where the paper's algorithms separate.
"""

import math

import pytest

from repro.optimizer.api import make_optimizer, optimize_query
from repro.workloads import tpch_query, tpch_query_names

ALGORITHMS = ["dpccp", "tdmincutbranch", "tdmincutlazy", "memoizationbasic"]

_CATALOGS = {name: tpch_query(name) for name in tpch_query_names()}


@pytest.mark.benchmark(group="ext-tpch-q5-cyclic")
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_q5(benchmark, algorithm):
    catalog = _CATALOGS["q5"]
    plan = benchmark(lambda: make_optimizer(algorithm, catalog).optimize())
    assert plan.n_joins() == catalog.graph.n_vertices - 1


@pytest.mark.benchmark(group="ext-tpch-q9-cyclic")
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_q9(benchmark, algorithm):
    catalog = _CATALOGS["q9"]
    plan = benchmark(lambda: make_optimizer(algorithm, catalog).optimize())
    assert plan.n_joins() == catalog.graph.n_vertices - 1


@pytest.mark.benchmark(group="ext-tpch-q8-tree")
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_q8(benchmark, algorithm):
    catalog = _CATALOGS["q8"]
    plan = benchmark(lambda: make_optimizer(algorithm, catalog).optimize())
    assert plan.n_joins() == catalog.graph.n_vertices - 1


def test_all_queries_all_algorithms_agree():
    for name, catalog in _CATALOGS.items():
        costs = [
            optimize_query(catalog, algorithm=a).cost for a in ALGORITHMS
        ]
        assert all(
            math.isclose(c, costs[0], rel_tol=1e-9) for c in costs
        ), name

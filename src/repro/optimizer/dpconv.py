"""DPconv-style fast-exact tier: layered (min,+) subset convolution.

DPconv (Stoian, 2024 — see PAPERS.md) reframes join ordering for
*symmetric* cost functions as a sequence of (min,+) convolutions: the
best cost of a relation set ``S`` is the minimum over unordered splits
``S = T ∪ C`` of ``local(S) + dp[T] + dp[C]``, and the DP can proceed
layer by layer over subset sizes because every proper subset of a set is
settled before the set itself.  This module implements that tier as a
registered algorithm with the same request/response surface as the
paper's enumerators.

Why this beats the PR 6 kernel on dense graphs even though both touch
``O(3^n)`` split candidates: the kernel drives a *partitioner* — per ccp
it crosses a Python callback boundary, maintains min-cut bookkeeping,
and pays the top-down driver's deferral machinery — while this DP is a
flat pair of array reads and one compare per candidate split over
dense, index-addressed arrays (no memo objects, no callbacks, no
recursion).  On clique-14 with ``C_out`` that constant-factor gap is
≥1.5x (``benchmarks/bench_dpconv.py`` gates it).

Restrictions, and why they are principled rather than incidental:

* **Symmetric cost models only** (``CostModel.is_symmetric()``).  The
  convolution prices each unordered split once; an asymmetric model
  (e.g. the physical model's nested-loop join) prices ``(T, C)`` and
  ``(C, T)`` differently, so collapsing orientations would silently
  drop candidates.  The registry factory falls back to the classic
  top-down driver for asymmetric models instead of guessing.
* **No branch-and-bound pruning.**  The DP settles every connected
  subset bottom-up; there is no search tree to cut.  Pruning requests
  also fall back to the top-down driver, which owns that capability.

Equivalence with the reference enumerator is exact on the cost value:
the candidate set per relation set is identical (connected ``T``/``C``
partitioning a connected ``S`` always have a crossing edge, i.e. are
exactly the ccps), operand costs are final when read, and for ``C_out``
the shared output-cardinality term distributes over ``min`` bitwise
(monotonicity of float addition), so ``tests/test_dpconv_equivalence.py``
asserts bit-identical optimal costs wherever cardinality arithmetic is
itself exact (power-of-two statistics) and 1e-9 agreement elsewhere.
Tie-breaks may differ — splits are scanned in descending-submask order,
not partitioner emission order — so plan *shape* can legitimately
differ between equally-optimal plans.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.catalog.statistics import Catalog
from repro.cost.base import CostModel
from repro.cost.cout import CoutCostModel
from repro.errors import DisconnectedGraphError, OptimizationError
from repro.optimizer.budget import Budget, BudgetExpired
from repro.plan.builder import PlanBuilder
from repro.plan.jointree import JoinTree

__all__ = ["DPconvPlanGenerator", "dpconv_split_work"]


def dpconv_split_work(n: int) -> int:
    """Total split-loop iterations for an ``n``-relation query: ``3^n / 2``.

    Every (set, submask-of-set-minus-lowbit) pair is visited exactly
    once, connected or not: ``sum_S 2^(|S|-1) = 3^n / 2``.  Admission
    control uses this as the work model when deciding whether the
    dpconv rung is affordable (:mod:`repro.service.resilience`).
    """
    if n < 0:
        raise OptimizationError(f"n must be >= 0, got {n}")
    return (3 ** n) // 2


class DPconvPlanGenerator:
    """Bottom-up (min,+) convolution over subset splits.

    Drop-in registry citizen: ``optimize()`` returns a
    :class:`~repro.plan.jointree.JoinTree`, ``builder`` exposes the
    memo/counters, and ``last_kernel`` reports ``"dpconv"`` after a run
    (the service surfaces it in metrics and trace spans exactly like the
    top-down driver's ``"fast"``/``"reference"``).

    Raises :class:`~repro.errors.OptimizationError` at construction for
    asymmetric cost models or pruning requests — the registry factory
    routes those to the top-down driver before this class is built, so
    hitting the raise means the caller bypassed the factory.
    """

    name = "dpconv"

    #: Deadlines thread into this engine cooperatively (see
    #: :mod:`repro.optimizer.budget`); expiry salvages the settled
    #: layers instead of discarding them.
    supports_budget = True

    def __init__(
        self,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
        enable_pruning: bool = False,
        budget: Optional[Budget] = None,
        native_backend: Optional[str] = None,
    ):
        if enable_pruning:
            raise OptimizationError(
                "dpconv settles every subset bottom-up; accumulated-cost "
                "pruning is a top-down capability (use tdmincutbranch)"
            )
        self.catalog = catalog
        self.graph = catalog.graph
        self.cost_model = cost_model if cost_model is not None else CoutCostModel()
        if not self.cost_model.is_symmetric():
            raise OptimizationError(
                "dpconv prices each unordered split once, which is only "
                f"exact for symmetric cost models; {self.cost_model.name!r} "
                "is asymmetric (use the top-down driver)"
            )
        self.builder = PlanBuilder(catalog, self.cost_model)
        self.budget = budget
        self.budget_expired = False
        self.salvage_report = None
        self.last_kernel: Optional[str] = None
        #: ``None``/``"auto"``/``"numpy"``/``"c"``/``"off"`` — explicit
        #: override for the native rung selection (``None`` defers to
        #: ``$REPRO_NATIVE_KERNEL``; see :mod:`repro.optimizer.native`).
        #: Validated eagerly so a typo fails at construction, not deep
        #: inside a request.
        if native_backend is not None:
            from repro.optimizer.native import BACKENDS

            if native_backend not in BACKENDS:
                raise OptimizationError(
                    f"native_backend must be one of {BACKENDS}, "
                    f"got {native_backend!r}"
                )
        self.native_backend = native_backend
        #: Engine that actually ran the last ``optimize()``: ``"python"``
        #: (pure layered convolution), ``"numpy"``, or ``"c"``.  Distinct
        #: from ``last_kernel`` (always ``"dpconv"`` here) so dashboards
        #: keyed on the algorithm tier keep working unchanged.
        self.last_backend: Optional[str] = None

    # ------------------------------------------------------------------

    def optimize(self) -> JoinTree:
        """Return an optimal bushy, cross-product-free join tree for G.

        Raises :class:`DisconnectedGraphError` when the query graph is
        disconnected (the search space excludes cross products).
        """
        graph = self.graph
        full = graph.all_vertices
        if not graph.is_connected(full):
            raise DisconnectedGraphError(
                "query graph is disconnected; the cross-product-free search "
                "space has no solution (join the components explicitly)"
            )
        self.last_kernel = "dpconv"
        self.last_backend = "python"
        if graph.n_vertices > 1:
            from repro.optimizer import native

            backend = native.resolve_backend(
                self.cost_model,
                requested=self.native_backend,
                n=graph.n_vertices,
            )
            if backend is not None:
                self.last_backend = backend
            try:
                if backend is not None:
                    native.run_native_convolution(self, full, backend)
                else:
                    self._convolve(full)
            except BudgetExpired:
                self.budget_expired = True
                return self._salvage(full)
        return self.builder.memo.extract_plan(full)

    def _salvage(self, root_set: int) -> JoinTree:
        """Complete the settled layers into a valid plan after expiry."""
        from repro.plan.salvage import salvage_plan

        plan, report = salvage_plan(
            self.builder.memo, self.catalog, root_set, self.cost_model
        )
        self.salvage_report = report
        return plan

    # ------------------------------------------------------------------

    def _convolve(self, full: int) -> None:
        """Fill the memo for every connected subset of ``full``.

        Sets are processed in ascending integer order — every proper
        subset of ``S`` is numerically smaller than ``S``, so this is a
        valid refinement of the size-layer order the convolution needs
        (all of layer ``k-1`` settles before any set of layer ``k`` is
        read).  All state is dense arrays indexed by bitmask:

        * ``nbr[S]`` — neighborhood, built incrementally from
          ``nbr[S minus lowbit]`` in O(1) per set;
        * ``conn[S]`` — connectivity, via closure from the lowest vertex
          (reads only ``nbr`` of already-settled proper subsets);
        * ``dp``/``card``/best-split arrays — the plan classes, flushed
          into the classic :class:`~repro.plan.memo.MemoTable` once at
          the end via ``bulk_load`` so extraction, validation, and
          explain need no dpconv-specific code.

        Split enumeration pins the lowest vertex of ``S`` on the left
        side (each unordered split visited once) and walks the remaining
        submasks descending via ``sub = (sub - 1) & rest``.  A split is
        a ccp iff both sides are connected — a crossing edge then exists
        because ``S`` itself is connected — so ``cost_evaluations``
        advances by exactly one per ccp, the same total a symmetric
        top-down run records.
        """
        graph = self.graph
        builder = self.builder
        memo = builder.memo
        combine = builder.estimator.combine
        cost_model = self.cost_model
        cout_fast = type(cost_model) is CoutCostModel
        join_cost = cost_model.join_cost
        inf = math.inf
        n = graph.n_vertices

        size = full + 1
        adj = [graph.neighbors_of_vertex(v) for v in range(n)]
        dp = [inf] * size
        card = [0.0] * size
        conn = bytearray(size)
        nbr = [0] * size
        best_left = [0] * size
        best_right = [0] * size
        impl = [None] * size

        # Leaves are pre-seeded in the MemoTable (cost 0, true cardinality);
        # adopt them so the flush rewrites identical values.
        for entry in memo.entries():
            leaf = entry.vertex_set
            dp[leaf] = entry.cost
            card[leaf] = entry.cardinality
            conn[leaf] = 1
            nbr[leaf] = adj[leaf.bit_length() - 1]
            best_left[leaf] = entry.best_left
            best_right[leaf] = entry.best_right
            impl[leaf] = entry.implementation

        budget = self.budget
        aborted = False
        priced_total = 0
        for s_set in range(3, size):
            low = s_set & -s_set
            if s_set == low:  # singleton, already seeded
                continue
            rest = s_set ^ low
            nbr[s_set] = nbr[rest] | adj[low.bit_length() - 1]
            # Connectivity: closure from the lowest vertex.  ``reach`` is
            # always a proper subset of ``s_set`` while growing, so its
            # neighborhood is already on file.
            reach = low
            while True:
                grown = (reach | nbr[reach]) & s_set
                if grown == reach:
                    break
                reach = grown
            if reach != s_set:
                continue
            conn[s_set] = 1
            if budget is not None:
                try:
                    # One node expansion per connected set about to be
                    # settled; a single set's submask scan is bounded
                    # (2^(|S|-1) tight iterations), so checking between
                    # sets bounds deadline overshoot to one scan.
                    budget.charge()
                except BudgetExpired:
                    conn[s_set] = 0  # the in-flight set never settled
                    aborted = True
                    break

            if cout_fast:
                # C_out: the local term ``card[S]`` is split-independent,
                # and float addition is monotone, so
                # ``min(card + subtree) == card + min(subtree)`` bitwise —
                # the hot loop compares subtree sums only.
                best = inf
                b_left = b_right = 0
                priced = 0
                sub = (rest - 1) & rest
                while True:
                    left = low | sub
                    right = s_set ^ left
                    if conn[left] and conn[right]:
                        priced += 1
                        total = dp[left] + dp[right]
                        if total < best:
                            best = total
                            b_left = left
                            b_right = right
                    if not sub:
                        break
                    sub = (sub - 1) & rest
                output_card = combine(
                    b_left, card[b_left], b_right, card[b_right]
                )
                card[s_set] = output_card
                dp[s_set] = output_card + best
                best_left[s_set] = b_left
                best_right[s_set] = b_right
                impl[s_set] = "join"
            else:
                # Generic symmetric model: the local cost depends on the
                # operand cardinalities, so price inside the loop (still
                # one orientation per unordered split).
                best = inf
                b_left = b_right = 0
                b_impl = None
                output_card = None
                priced = 0
                sub = (rest - 1) & rest
                while True:
                    left = low | sub
                    right = s_set ^ left
                    if conn[left] and conn[right]:
                        left_card = card[left]
                        right_card = card[right]
                        if output_card is None:
                            output_card = combine(
                                left, left_card, right, right_card
                            )
                        priced += 1
                        local, name = join_cost(
                            left_card, right_card, output_card
                        )
                        total = local + dp[left] + dp[right]
                        if total < best:
                            best = total
                            b_left = left
                            b_right = right
                            b_impl = name
                    if not sub:
                        break
                    sub = (sub - 1) & rest
                card[s_set] = output_card
                dp[s_set] = best
                best_left[s_set] = b_left
                best_right[s_set] = b_right
                impl[s_set] = b_impl
            priced_total += priced

        # One evaluation per ccp (symmetric) — same accounting as the
        # fast kernel; derived once instead of incremented per split.
        builder.cost_evaluations += priced_total
        memo.bulk_load(
            (s, card[s], dp[s], best_left[s], best_right[s], impl[s], True)
            for s in range(1, size)
            if conn[s]
        )
        if aborted:
            # Sets settle in ascending integer order, so everything
            # flushed above is final and extractable; mark the root as
            # unsolved (for the salvage report) and hand control to the
            # driver's salvage path.
            if not conn[full]:
                memo.bulk_load(((full, None, math.inf, 0, 0, None, False),))
            raise BudgetExpired(budget.reason or "budget expired")

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"DPconvPlanGenerator(cost_model={self.cost_model.name}, "
            f"n={self.graph.n_vertices})"
        )

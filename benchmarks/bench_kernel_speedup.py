#!/usr/bin/env python
"""Acceptance benchmark for the fast enumeration kernel.

Times the full ``TopDownPlanGenerator.optimize()`` on the paper's four
canonical shapes plus a deep chain, once per driver path — the recursive
reference implementation (``use_kernel=False``) and the allocation-free
kernel (``use_kernel=True``) — and enforces three gates:

* **speedup**: the geometric-mean speedup across the timed shapes must
  reach :data:`SPEEDUP_FLOOR` (the kernel exists to cut the interpreter
  constant factor; if it stops paying for itself, fail loudly),
* **equivalence**: per shape, both paths must produce the identical
  optimal cost, the identical number of emitted ccps, and the identical
  plan shape — speed is worthless if the answer drifts,
* **depth**: a deep chain must optimize *and* extract through the
  kernel without ``RecursionError`` (the recursive driver dies near
  n=490; the explicit-stack kernel is bound by memory, not
  ``sys.getrecursionlimit()``).  The default smoke uses chain-200 —
  already past any plausible default recursion limit — because the
  full chain-600 case costs minutes of wall clock for the same
  assertion; ``--deep-chain`` opts into the full size.

Methodology: per shape, both paths are warmed once, then timed in
alternating order and the **best** run per path is compared.  Scheduler
preemption only ever adds time, so per-run minima converge on the true
cost, and alternation keeps machine-wide drift from landing on one path.

The per-shape numbers land in ``BENCH_kernel.json`` next to this repo's
other benchmark artifacts.  ``--profile`` instead prints the top-25
cProfile lines of the kernel path on the largest clique — the first
thing to look at when the speedup gate regresses.

Run:  python benchmarks/bench_kernel_speedup.py [--repeat N] [--skip-deep]
      python benchmarks/bench_kernel_speedup.py --profile

Exit status is non-zero if any gate fails, so ``make verify`` gates on it.
"""

from __future__ import annotations

import argparse
import math
import sys
import time

from repro.catalog.workload import uniform_statistics
from repro.cost.cout import CoutCostModel
from repro.enumeration.mincutbranch import MinCutBranch
from repro.graph.shapes import (
    chain_graph,
    clique_graph,
    cycle_graph,
    star_graph,
)
from repro.optimizer.topdown import TopDownPlanGenerator

#: Acceptance: geometric-mean speedup of the kernel over the reference
#: driver across the timed shapes.
SPEEDUP_FLOOR = 1.3

#: Full deep-chain regression size: comfortably past the reference
#: driver's RecursionError threshold (~490 relations on default limits).
#: Opt-in via ``--deep-chain``; the default smoke runs SMOKE_CHAIN_N.
DEEP_CHAIN_N = 600

#: Default depth smoke: big enough that a recursive extraction from an
#: already-deep stack would die, cheap enough for every verify run.
SMOKE_CHAIN_N = 200

#: (label, graph builder, alternating timed repetitions per path).
#: Statistics are bounded (|R| = 4, sel = 0.25) so cardinalities — and
#: with them C_out — stay finite even on the 600-relation chain.
TIMED_SHAPES = [
    ("chain-18", lambda: chain_graph(18), 7),
    ("star-14", lambda: star_graph(14), 5),
    ("cycle-16", lambda: cycle_graph(16), 7),
    ("clique-14", lambda: clique_graph(14), 2),
    ("chain-100", lambda: chain_graph(100), 3),
]


def make_catalog(graph):
    return uniform_statistics(graph, cardinality=4.0, selectivity=0.25)


def run_once(catalog, use_kernel):
    """One full optimization; returns (seconds, optimizer, plan)."""
    optimizer = TopDownPlanGenerator(
        catalog, MinCutBranch, CoutCostModel(), use_kernel=use_kernel
    )
    started = time.perf_counter()
    plan = optimizer.optimize()
    return time.perf_counter() - started, optimizer, plan


def bench_shape(label, graph, repeat):
    """Best-of-N alternating timings plus the equivalence cross-check."""
    catalog = make_catalog(graph)
    # Warmup (also the run used for the equivalence checks).
    _, reference, ref_plan = run_once(catalog, use_kernel=False)
    _, fast, fast_plan = run_once(catalog, use_kernel=True)
    problems = []
    if reference.last_kernel != "reference" or fast.last_kernel != "fast":
        problems.append(
            f"{label}: kernel selection reported "
            f"{reference.last_kernel}/{fast.last_kernel}"
        )
    if ref_plan != fast_plan:
        problems.append(f"{label}: kernel plan differs from reference plan")
    if reference.partitioner.stats.emitted != fast.partitioner.stats.emitted:
        problems.append(
            f"{label}: ccp counts differ "
            f"({reference.partitioner.stats.emitted} vs "
            f"{fast.partitioner.stats.emitted})"
        )
    best = {False: math.inf, True: math.inf}
    for index in range(repeat):
        order = (False, True) if index % 2 == 0 else (True, False)
        for use_kernel in order:
            elapsed, _, _ = run_once(catalog, use_kernel)
            best[use_kernel] = min(best[use_kernel], elapsed)
    speedup = best[False] / best[True]
    return {
        "shape": label,
        "ccps": fast.partitioner.stats.emitted,
        "cost": fast_plan.cost,
        "reference_ms": best[False] * 1e3,
        "kernel_ms": best[True] * 1e3,
        "speedup": speedup,
    }, problems


def bench_deep_chain(n):
    """A deep chain must optimize and extract on the kernel path."""
    catalog = make_catalog(chain_graph(n))
    try:
        elapsed, optimizer, plan = run_once(catalog, use_kernel=True)
    except RecursionError:
        return {
            "shape": f"chain-{n}",
            "recursion_error": True,
        }, [f"chain-{n}: kernel path hit RecursionError"]
    problems = []
    if plan.n_joins() != n - 1:
        problems.append(
            f"chain-{n}: extracted {plan.n_joins()} joins, "
            f"expected {n - 1}"
        )
    plan.validate()
    return {
        "shape": f"chain-{n}",
        "recursion_error": False,
        "kernel_ms": elapsed * 1e3,
        "ccps": optimizer.partitioner.stats.emitted,
        "joins": plan.n_joins(),
    }, problems


def profile_kernel(top=25):
    """cProfile the kernel path on the largest timed clique."""
    import cProfile
    import pstats

    catalog = make_catalog(clique_graph(14))
    optimizer = TopDownPlanGenerator(
        catalog, MinCutBranch, CoutCostModel(), use_kernel=True
    )
    profiler = cProfile.Profile()
    profiler.enable()
    optimizer.optimize()
    profiler.disable()
    pstats.Stats(profiler).sort_stats("tottime").print_stats(top)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repeat", type=int, default=None,
        help="override the per-shape timed repetitions",
    )
    parser.add_argument(
        "--skip-deep", action="store_true",
        help="skip the deep-chain depth regression entirely",
    )
    parser.add_argument(
        "--deep-chain", action="store_true",
        help=f"run the full chain-{DEEP_CHAIN_N} depth regression "
        f"(minutes of wall clock; default is a chain-{SMOKE_CHAIN_N} "
        "smoke covering the same RecursionError assertion)",
    )
    parser.add_argument(
        "--output", default=None,
        help="where to write the JSON results (default: "
        "BENCH_kernel.json in the shared gate-report directory)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the top-25 kernel profile on clique-14 and exit",
    )
    args = parser.parse_args(argv)

    if args.profile:
        profile_kernel()
        return 0

    print("fast-kernel speedup bench (best-of-N alternating runs per shape)")
    failures = []
    rows = []
    for label, builder, repeat in TIMED_SHAPES:
        row, problems = bench_shape(
            label, builder(), args.repeat or repeat
        )
        failures.extend(problems)
        rows.append(row)
        print(
            f"{label:10s} reference={row['reference_ms']:9.1f}ms "
            f"kernel={row['kernel_ms']:9.1f}ms "
            f"speedup={row['speedup']:.2f}x  ({row['ccps']} ccps)"
        )

    geomean = math.exp(
        sum(math.log(row["speedup"]) for row in rows) / len(rows)
    )
    print(f"geometric-mean speedup: {geomean:.3f}x (floor {SPEEDUP_FLOOR}x)")
    if geomean < SPEEDUP_FLOOR:
        failures.append(
            f"geometric-mean speedup {geomean:.3f}x is below the "
            f"{SPEEDUP_FLOOR}x floor"
        )

    deep_row = None
    if not args.skip_deep:
        deep_n = DEEP_CHAIN_N if args.deep_chain else SMOKE_CHAIN_N
        deep_row, problems = bench_deep_chain(deep_n)
        failures.extend(problems)
        if not problems:
            print(
                f"chain-{deep_n}: optimized and extracted "
                f"{deep_row['joins']} joins in {deep_row['kernel_ms']:.0f}ms "
                f"({deep_row['ccps']} ccps) without RecursionError"
            )

    report = {
        "bench": "kernel_speedup",
        "speedup_floor": SPEEDUP_FLOOR,
        "geomean_speedup": geomean,
        "shapes": rows,
        "deep_chain": deep_row,
        "failures": failures,
    }
    from repro.bench.report import write_bench_report

    args.output = write_bench_report("kernel", report, output=args.output)
    print(f"wrote {args.output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Cooperative execution budgets for the exact enumeration engines.

A :class:`Budget` is a small handle carried by an optimizer run that
bounds how long the exact search may keep enumerating: a wall-clock
deadline, an optional node-expansion cap (deterministic — used by tests
that must not depend on machine speed), or both.  The engines check it
*cooperatively* on their hot loops — there is no signal, no watcher
thread, and no ``terminate()`` involved — and when it expires they stop
cleanly, flush every finished subproblem into the
:class:`~repro.plan.memo.MemoTable`, and let
:func:`repro.plan.salvage.salvage_plan` complete the partial memo into a
valid plan.

Check discipline (the ≤1% kernel-overhead gate in
``benchmarks/bench_anytime.py`` holds the engines to this):

* :meth:`charge` is called once per *node expansion* (one memo
  subproblem explored / one connected set settled).  Node expansions are
  microsecond-scale units of work, so the single ``monotonic()`` read it
  performs is noise.
* :meth:`check` is the stride-check primitive for loops *inside* one
  node expansion (a huge set's ccp emission or submask scan): callers
  keep their own countdown and invoke it every few hundred iterations,
  bounding deadline overshoot without paying a clock read per iteration.

Expiry is signalled by raising :class:`BudgetExpired` — control flow,
not an error: the exception unwinds the enumeration machinery exactly
once, the engine catches it at its top level, and the partially-filled
memo is the (valuable) result.  It deliberately does **not** subclass
:class:`~repro.errors.OptimizationError`, so generic error handling
cannot swallow it before the engine's salvage path runs.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import OptimizationError

__all__ = ["Budget", "BudgetExpired"]


class BudgetExpired(Exception):
    """The active :class:`Budget` ran out mid-enumeration.

    Raised by :meth:`Budget.charge` / :meth:`Budget.check`; engines
    catch it at their top level and fall through to memo salvage.
    """


class Budget:
    """Wall-clock deadline and/or node-expansion cap for one run.

    Parameters
    ----------
    deadline_seconds:
        Wall-clock allowance, measured from construction on the
        monotonic clock.  ``None`` means no time limit.
    node_cap:
        Maximum number of node expansions (:meth:`charge` calls weighted
        by their ``nodes`` argument).  Deterministic across machines, so
        tests use it instead of timing.  ``None`` means no cap.
    clock:
        Injection point for tests; defaults to :func:`time.monotonic`.

    At least one limit must be given — an unlimited budget is a bug in
    the caller (pass no budget at all instead).
    """

    __slots__ = ("deadline_at", "node_cap", "nodes", "expired", "reason", "_clock")

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        node_cap: Optional[int] = None,
        clock=time.monotonic,
    ):
        if deadline_seconds is None and node_cap is None:
            raise OptimizationError(
                "a Budget needs a deadline_seconds or a node_cap "
                "(omit the budget entirely for an unbounded run)"
            )
        if deadline_seconds is not None and not deadline_seconds > 0:
            raise OptimizationError(
                f"deadline_seconds must be > 0, got {deadline_seconds!r}"
            )
        if node_cap is not None and node_cap < 1:
            raise OptimizationError(f"node_cap must be >= 1, got {node_cap!r}")
        self._clock = clock
        self.deadline_at = (
            None if deadline_seconds is None else clock() + deadline_seconds
        )
        self.node_cap = node_cap
        self.nodes = 0
        self.expired = False
        self.reason: Optional[str] = None

    # ------------------------------------------------------------------

    def _expire(self, reason: str) -> None:
        self.expired = True
        self.reason = reason
        raise BudgetExpired(reason)

    def charge(self, nodes: int = 1) -> None:
        """Account ``nodes`` expansions; raise :class:`BudgetExpired` if over.

        Called once per node expansion, so both the cap and the clock are
        checked unconditionally — the clock read is negligible against
        the work one expansion performs.
        """
        self.nodes += nodes
        if self.node_cap is not None and self.nodes >= self.node_cap:
            self._expire(f"node cap reached ({self.nodes} >= {self.node_cap})")
        if self.deadline_at is not None and self._clock() >= self.deadline_at:
            self._expire("deadline reached")

    def check(self) -> None:
        """Clock-only check for intra-expansion loops (caller strides it)."""
        if self.deadline_at is not None and self._clock() >= self.deadline_at:
            self._expire("deadline reached")
        if self.node_cap is not None and self.nodes >= self.node_cap:
            self._expire(f"node cap reached ({self.nodes} >= {self.node_cap})")

    def remaining_seconds(self) -> Optional[float]:
        """Seconds until the deadline (``None`` when no deadline is set)."""
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - self._clock())

    def __repr__(self) -> str:
        limits = []
        if self.deadline_at is not None:
            limits.append(f"remaining={self.remaining_seconds():.3f}s")
        if self.node_cap is not None:
            limits.append(f"nodes={self.nodes}/{self.node_cap}")
        state = "expired" if self.expired else "live"
        return f"Budget({', '.join(limits)}, {state})"

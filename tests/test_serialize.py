"""Round-trip tests for JSON serialization."""

import json
import math

import pytest

from repro import (
    Hypergraph,
    attach_random_statistics,
    chain_graph,
    optimize_query,
    random_hypergraph,
)
from repro.errors import ReproError
from repro.serialize import (
    catalog_from_dict,
    catalog_to_dict,
    graph_from_dict,
    graph_to_dict,
    hypergraph_from_dict,
    hypergraph_to_dict,
    plan_from_dict,
    plan_to_dict,
)

from .conftest import random_connected_graph


class TestGraphRoundTrip:
    def test_round_trip(self, rng):
        for _ in range(20):
            graph = random_connected_graph(rng)
            document = graph_to_dict(graph)
            json.dumps(document)  # must be plain-JSON encodable
            assert graph_from_dict(document) == graph

    def test_kind_check(self):
        with pytest.raises(ReproError):
            graph_from_dict({"kind": "catalog"})

    def test_not_a_dict(self):
        with pytest.raises(ReproError):
            graph_from_dict([1, 2, 3])


class TestCatalogRoundTrip:
    def test_round_trip(self, rng):
        for _ in range(10):
            graph = random_connected_graph(rng)
            catalog = attach_random_statistics(graph, rng=rng)
            document = json.loads(json.dumps(catalog_to_dict(catalog)))
            restored = catalog_from_dict(document)
            assert restored.graph == catalog.graph
            for v in range(graph.n_vertices):
                assert restored.cardinality(v) == catalog.cardinality(v)
            for (u, v) in graph.edges:
                assert restored.selectivity(u, v) == catalog.selectivity(u, v)

    def test_restored_catalog_optimizes_identically(self, rng):
        graph = random_connected_graph(rng)
        catalog = attach_random_statistics(graph, rng=rng)
        restored = catalog_from_dict(catalog_to_dict(catalog))
        assert math.isclose(
            optimize_query(catalog).cost,
            optimize_query(restored).cost,
            rel_tol=1e-12,
        )

    def test_corrupted_selectivity_rejected(self):
        catalog = attach_random_statistics(chain_graph(3), seed=1)
        document = catalog_to_dict(catalog)
        document["selectivities"][0]["selectivity"] = 2.0
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            catalog_from_dict(document)


class TestPlanRoundTrip:
    def test_round_trip(self, rng):
        for _ in range(10):
            graph = random_connected_graph(rng)
            catalog = attach_random_statistics(graph, rng=rng)
            plan = optimize_query(catalog).plan
            document = json.loads(json.dumps(plan_to_dict(plan)))
            restored = plan_from_dict(document)
            assert restored == plan

    def test_validation_on_load(self):
        catalog = attach_random_statistics(chain_graph(3), seed=2)
        document = plan_to_dict(optimize_query(catalog).plan)
        # Corrupt: make the two children overlap.
        document["root"]["left"] = document["root"]["right"]
        with pytest.raises(AssertionError):
            plan_from_dict(document)


class TestHypergraphRoundTrip:
    def test_round_trip(self):
        for seed in range(10):
            hypergraph = random_hypergraph(6, n_complex_edges=2, seed=seed)
            document = json.loads(json.dumps(hypergraph_to_dict(hypergraph)))
            restored = hypergraph_from_dict(document)
            assert restored.n_vertices == hypergraph.n_vertices
            assert restored.edges == hypergraph.edges

    def test_plain_graph_lift_round_trip(self):
        hypergraph = Hypergraph.from_query_graph(chain_graph(5))
        restored = hypergraph_from_dict(hypergraph_to_dict(hypergraph))
        assert restored.is_plain_graph

"""Ablation: branch-and-bound pruning for the top-down driver.

The paper measures raw enumeration without pruning (fair comparison with
bottom-up) but notes pruning is exactly the top-down advantage.  This
bench quantifies what the advantage buys on skewed statistics.
"""

import math

import pytest

from repro.optimizer.api import make_optimizer

from .conftest import make_instances

_GEN = make_instances(seed=66)
_INSTANCES = {
    "star9": _GEN.fixed_shape("star", 9),
    "clique8": _GEN.fixed_shape("clique", 8),
    "cyclic10": _GEN.random_cyclic(10, 20),
}


@pytest.mark.benchmark(group="ablation-pruning")
@pytest.mark.parametrize("name", sorted(_INSTANCES))
@pytest.mark.parametrize(
    "pruning", [False, True], ids=["pruning-off", "pruning-on"]
)
def test_topdown_with_and_without_pruning(benchmark, name, pruning):
    catalog = _INSTANCES[name].catalog

    def run():
        return make_optimizer(
            "tdmincutbranch", catalog, enable_pruning=pruning
        ).optimize()

    benchmark(run)


@pytest.mark.parametrize("name", sorted(_INSTANCES))
def test_pruning_preserves_optimality(name):
    catalog = _INSTANCES[name].catalog
    plain = make_optimizer("tdmincutbranch", catalog).optimize()
    pruned = make_optimizer(
        "tdmincutbranch", catalog, enable_pruning=True
    ).optimize()
    assert math.isclose(plain.cost, pruned.cost, rel_tol=1e-9)

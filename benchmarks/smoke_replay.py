#!/usr/bin/env python
"""Replay smoke gate: seeded stream against a live 2-shard front door.

Boots ``python -m repro.cli serve`` (the real production entry point) on
port 0, replays a small seeded multi-tenant stream through it with
:mod:`repro.bench.replay`, and asserts the fleet dashboard's core
contract end-to-end:

* nonzero warm cache hits (replayed queries find their shard's cache)
* at least one drift-triggered invalidation (the mid-stream stats-epoch
  bump changed signatures, orphaning cached plans)
* zero stale-plan serves across the drift boundary (the stats-epoch
  cache-key fix holds over the wire, not just in-process)
* every registered figure renders without error, and ``REPLAY.json``
  parses back with the totals the events imply

Runs in well under a minute.  Used by ``make replay-smoke`` (part of
``make verify``) and CI.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time

SERVE_ARGS = [
    sys.executable,
    "-m",
    "repro.cli",
    "serve",
    "--port",
    "0",
    "--shards",
    "2",
    "--deadline",
    "30",
]


def expect(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")


def main() -> int:
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    server = subprocess.Popen(
        SERVE_ARGS,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        deadline = time.monotonic() + 60.0
        banner = server.stdout.readline()
        while "listening on" not in banner:
            expect(server.poll() is None, f"server exited early: {banner!r}")
            expect(
                time.monotonic() < deadline, "server never printed its banner"
            )
            banner = server.stdout.readline()
        match = re.search(r"listening on \S+:(\d+)", banner)
        expect(match is not None, f"unparseable banner: {banner!r}")
        port = int(match.group(1))
        print(f"server up on port {port}")

        from repro.bench.figures import FIGURES
        from repro.bench.replay import (
            ReplayConfig,
            run_replay,
            write_outputs,
        )

        config = ReplayConfig(
            seed=20110411,
            tenants=3,
            requests=150,
            queries_per_tenant=4,
            # Keep the smoke fast: synthetic shapes only, small cliques.
            named_fraction=0.25,
            max_relations=8,
            clique_min=8,
            clique_max=10,
        )
        events, summary = run_replay(config, host="127.0.0.1", port=port)
        outdir = os.path.join("replay_out", "smoke")
        manifest = write_outputs(events, summary, outdir)
        totals = summary["totals"]
        print(
            f"replayed {totals['requests']} requests: "
            f"hit rate {totals['hit_rate']:.2%}, "
            f"{totals['drift_invalidations']} drift invalidations, "
            f"{totals['stale_plan_serves']} stale serves, "
            f"{totals['errors']} errors"
        )

        expect(
            totals["requests"] == config.requests,
            f"lost events: {totals['requests']} != {config.requests}",
        )
        expect(totals["errors"] == 0, f"transport/optimize errors: {totals}")
        expect(
            totals["cache_hits"] > 0,
            "replayed stream produced zero cache hits",
        )
        expect(
            totals["drift_invalidations"] >= 1,
            "stats drift must orphan at least one cached plan",
        )
        expect(
            totals["stale_plan_serves"] == 0,
            f"stale plans served across the drift boundary: {totals}",
        )
        shards = {e["shard"] for e in events if e["shard"] is not None}
        expect(
            shards <= {0, 1} and shards,
            f"unexpected shard attribution: {shards}",
        )

        for name in FIGURES:
            paths = manifest["figures"].get(name)
            expect(paths is not None, f"figure {name!r} was not rendered")
            expect(
                os.path.getsize(paths["svg"]) > 0,
                f"figure {name!r} rendered empty",
            )
            with open(paths["svg"], "r", encoding="utf-8") as handle:
                expect(
                    "<svg" in handle.read(256),
                    f"figure {name!r} is not an SVG document",
                )
        print(f"all {len(FIGURES)} registered figures rendered")

        with open(manifest["report"], "r", encoding="utf-8") as handle:
            report = json.load(handle)
        expect(
            report["totals"] == totals,
            "REPLAY.json does not round-trip the computed totals",
        )
        print("replay smoke: ok")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())

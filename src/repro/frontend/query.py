"""Query building: from schema-level joins to an optimizable Catalog.

``QueryBuilder`` collects the tables a query references and the join
predicates between them, written as ``"alias1.col = alias2.col"``
strings (or with explicit selectivities), then produces:

* a :class:`~repro.catalog.statistics.Catalog` bound to the induced
  query graph, ready for any optimizer in the library, and
* an :meth:`optimize` shortcut returning the optimizer result with
  relation names mapped back to the query's aliases.

Example::

    db = Database("shop")
    db.add_table("sales", 5_000_000, {"date_id": 2_555})
    db.add_table("date_dim", 2_555)
    db.add_foreign_key("sales", "date_id", "date_dim", "date_id")

    result = (
        db.query()
        .table("sales")
        .table("date_dim")
        .join("sales.date_id = date_dim.date_id")
        .optimize()
    )
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.catalog.statistics import Catalog, Relation
from repro.cost.base import CostModel
from repro.errors import CatalogError
from repro.graph.query_graph import QueryGraph
from repro.optimizer.api import OptimizationResult, optimize_query

__all__ = ["QueryBuilder"]

_PREDICATE = re.compile(
    r"^\s*(\w+)\.(\w+)\s*=\s*(\w+)\.(\w+)\s*$"
)


class QueryBuilder:
    """Accumulates tables and join predicates; builds Catalogs."""

    def __init__(self, database):
        self._database = database
        self._aliases: List[str] = []
        self._alias_table: Dict[str, str] = {}
        self._joins: List[Tuple[str, str, float]] = []
        self._filters: Dict[str, float] = {}

    # ------------------------------------------------------------------

    def table(self, name: str, alias: Optional[str] = None) -> "QueryBuilder":
        """Reference a table, optionally under an alias (self-joins)."""
        self._database.table(name)  # existence check
        alias = alias or name
        if alias in self._alias_table:
            raise CatalogError(f"duplicate alias {alias!r} in query")
        self._aliases.append(alias)
        self._alias_table[alias] = name
        return self

    def join(
        self, predicate: str, selectivity: Optional[float] = None
    ) -> "QueryBuilder":
        """Add an equi-join predicate ``"a.x = b.y"``.

        ``selectivity`` overrides the schema-derived estimate.
        """
        match = _PREDICATE.match(predicate)
        if not match:
            raise CatalogError(
                f"cannot parse join predicate {predicate!r}; expected "
                "'alias.column = alias.column'"
            )
        alias_a, column_a, alias_b, column_b = match.groups()
        for alias in (alias_a, alias_b):
            if alias not in self._alias_table:
                raise CatalogError(
                    f"alias {alias!r} not referenced by the query; call "
                    f".table({alias!r}) first"
                )
        if alias_a == alias_b:
            raise CatalogError("join predicate must span two different aliases")
        if selectivity is None:
            selectivity = self._database.join_selectivity(
                self._alias_table[alias_a],
                column_a,
                self._alias_table[alias_b],
                column_b,
            )
        self._joins.append((alias_a, alias_b, selectivity))
        return self

    def filter(self, alias: str, selectivity: float) -> "QueryBuilder":
        """Apply a local selection on one referenced table.

        Selections execute below the join tree, so they simply scale the
        base cardinality the optimizer sees for that alias; multiple
        filters on the same alias multiply.
        """
        if alias not in self._alias_table:
            raise CatalogError(
                f"alias {alias!r} not referenced by the query"
            )
        if not 0.0 < selectivity <= 1.0:
            raise CatalogError(
                f"filter selectivity must be in (0, 1], got {selectivity}"
            )
        self._filters[alias] = self._filters.get(alias, 1.0) * selectivity
        return self

    def filter_equals(self, alias: str, column: str) -> "QueryBuilder":
        """Equality selection ``alias.column = <constant>``.

        Uses the textbook estimate ``1 / ndv(column)``.
        """
        if alias not in self._alias_table:
            raise CatalogError(f"alias {alias!r} not referenced by the query")
        table = self._database.table(self._alias_table[alias])
        return self.filter(alias, 1.0 / table.column(column).distinct_values)

    # ------------------------------------------------------------------

    def build_catalog(self) -> Catalog:
        """Materialize the query as a graph + statistics Catalog."""
        if not self._aliases:
            raise CatalogError("query references no tables")
        index_of = {alias: i for i, alias in enumerate(self._aliases)}
        edges = []
        selectivities: Dict[Tuple[int, int], float] = {}
        for alias_a, alias_b, selectivity in self._joins:
            u, v = index_of[alias_a], index_of[alias_b]
            key = (min(u, v), max(u, v))
            if key in selectivities:
                # Conjunctive predicates between the same pair multiply.
                selectivities[key] *= selectivity
            else:
                edges.append(key)
                selectivities[key] = selectivity
        graph = QueryGraph(len(self._aliases), edges)
        relations = []
        for alias in self._aliases:
            rows = self._database.table(self._alias_table[alias]).rows
            rows *= self._filters.get(alias, 1.0)
            relations.append(Relation(alias, max(rows, 1.0)))
        return Catalog(graph, relations, selectivities)

    def optimize(
        self,
        algorithm: str = "tdmincutbranch",
        cost_model: Optional[CostModel] = None,
        enable_pruning: bool = False,
    ) -> OptimizationResult:
        """Build the catalog and optimize in one call."""
        return optimize_query(
            self.build_catalog(),
            algorithm=algorithm,
            cost_model=cost_model,
            enable_pruning=enable_pruning,
        )

    def __repr__(self) -> str:
        return (
            f"QueryBuilder(tables={self._aliases!r}, "
            f"joins={len(self._joins)})"
        )

"""Exception hierarchy for the repro library, plus typed error payloads.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class at the API boundary.  :class:`ErrorInfo` is the wire
form of a failure: a stable machine-readable ``code``, a human-readable
``message``, and a ``retryable`` hint — the serving layer puts these in
HTTP error payloads and on :class:`~repro.optimizer.api.OptimizationResult`
instead of bare exception reprs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

__all__ = [
    "ReproError",
    "GraphError",
    "DisconnectedGraphError",
    "CatalogError",
    "OptimizationError",
    "DeadlineExceededError",
    "AdmissionError",
    "CircuitOpenError",
    "RetryExhaustedError",
    "InvalidRequestError",
    "UnsupportedVersionError",
    "ErrorInfo",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for malformed query graphs (bad vertices, edges, or sets)."""


class CatalogError(ReproError):
    """Raised for inconsistent statistics (cardinalities, selectivities)."""


class OptimizationError(ReproError):
    """Raised when plan generation cannot complete."""


class DisconnectedGraphError(GraphError, OptimizationError):
    """Raised when an operation requires a connected (sub)graph.

    The paper's well-accepted heuristic excludes cross products, which
    presumes the query graph is connected (Sec. I); optimizing a
    disconnected graph without cross products has no solution.  Inherits
    both :class:`GraphError` (it is a structural property of the graph)
    and :class:`OptimizationError` (enumerators and heuristics raise it
    when refusing a disconnected search), so handlers catching either
    keep working; the wire code is ``invalid_query``.
    """


class DeadlineExceededError(OptimizationError):
    """Raised (or recorded on a batch result) when a request exceeds its
    per-item deadline.

    The service layer's batch executors convert this into an
    :class:`~repro.optimizer.api.OptimizationResult` with ``error`` set —
    or into a heuristic fallback plan when one was requested — instead of
    letting one slow query stall the whole batch.
    """


class AdmissionError(OptimizationError):
    """Raised when a request is rejected by admission control and no
    degradation rung can serve it either.

    The common case — an over-budget request with a usable heuristic
    rung — does *not* raise: the service silently degrades and records
    the rung and reason on the result.  This error surfaces only when
    every rung of the ladder is unusable for the query.
    """


class CircuitOpenError(OptimizationError):
    """Raised when a request is refused because the circuit breaker for
    its algorithm label is open and no degradation rung applies.

    Like :class:`AdmissionError`, the usual outcome of an open breaker
    is a degraded (heuristic) plan, not an exception.
    """


class RetryExhaustedError(OptimizationError):
    """Recorded when a transient worker failure persisted through every
    allowed retry attempt (or the per-batch retry budget ran out)."""


class InvalidRequestError(ReproError):
    """Raised for a structurally invalid wire request document — wrong
    ``kind``, missing required fields, or values of the wrong type.

    Distinct from :class:`GraphError`/:class:`CatalogError` (the document
    decoded fine but describes an unusable query): this one means the
    document itself cannot be decoded.  The serving layer maps it to the
    stable error code ``invalid_request`` (HTTP 400).
    """


class UnsupportedVersionError(ReproError):
    """Raised by :mod:`repro.serialize` readers handed a document whose
    ``version`` field names a format this build cannot read.

    The serving layer maps it to the stable error code
    ``unsupported_version`` (HTTP 400) instead of a traceback, so a
    client speaking a future wire schema gets an actionable rejection.
    """


# ----------------------------------------------------------------------
# Typed error payloads
# ----------------------------------------------------------------------

#: Exception class name -> stable wire error code.  Order matters only in
#: :meth:`ErrorInfo.from_exception`, which walks the MRO; this table is
#: the single place a new typed error gets its code.
_CODE_BY_EXCEPTION = {
    "DeadlineExceededError": ("deadline_exceeded", True),
    "AdmissionError": ("admission_rejected", False),
    "CircuitOpenError": ("breaker_open", True),
    "RetryExhaustedError": ("retry_exhausted", False),
    "UnsupportedVersionError": ("unsupported_version", False),
    "InvalidRequestError": ("invalid_request", False),
    "DisconnectedGraphError": ("invalid_query", False),
    "GraphError": ("invalid_query", False),
    "CatalogError": ("invalid_query", False),
    "OptimizationError": ("optimization_failed", False),
    "ReproError": ("optimization_failed", False),
}


class ErrorInfo(str):
    """A failure with a stable machine code: ``(code, message, retryable)``.

    Subclasses :class:`str` (the value *is* the message), so every caller
    that treats :attr:`OptimizationResult.error` as a plain string —
    ``result.error is None``, substring checks, formatting — keeps
    working unchanged, while typed consumers read :attr:`code` and
    :attr:`retryable`.  ``code`` values are part of the wire schema
    (documented in ``docs/SERVING.md``) and must stay stable across
    releases; ``message`` is free-form and may change.
    """

    def __new__(
        cls, message: str, code: str = "internal", retryable: bool = False
    ) -> "ErrorInfo":
        self = super().__new__(cls, message)
        self.code = str(code)
        self.retryable = bool(retryable)
        return self

    @property
    def message(self) -> str:
        """The human-readable message (the string value itself)."""
        return str(self)

    def to_dict(self) -> Dict[str, Any]:
        """Wire form: ``{"code", "message", "retryable"}``."""
        return {
            "code": self.code,
            "message": str(self),
            "retryable": self.retryable,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "ErrorInfo":
        """Rebuild from the wire form (tolerant of missing fields)."""
        if not isinstance(document, dict):
            return cls.coerce(document)
        return cls(
            str(document.get("message", "")),
            code=str(document.get("code", "internal")),
            retryable=bool(document.get("retryable", False)),
        )

    @classmethod
    def from_exception(cls, exc: BaseException) -> "ErrorInfo":
        """Map an exception to its stable code via the class hierarchy.

        The message keeps the legacy ``"TypeName: message"`` shape that
        error strings have always carried, so logs and substring-matching
        callers see no change.
        """
        code, retryable = "internal", False
        for klass in type(exc).__mro__:
            entry = _CODE_BY_EXCEPTION.get(klass.__name__)
            if entry is not None:
                code, retryable = entry
                break
        return cls(f"{type(exc).__name__}: {exc}", code=code, retryable=retryable)

    @classmethod
    def coerce(cls, value: Union[str, Dict[str, Any], None]) -> Optional["ErrorInfo"]:
        """Normalize any legacy error value into an :class:`ErrorInfo`.

        Accepts an existing :class:`ErrorInfo` (returned as-is), a wire
        dict, or a bare string.  Legacy ``"TypeName: message"`` strings
        recover their code from the type-name prefix when it names a
        known library error; anything else gets ``internal``.  ``None``
        stays ``None``.
        """
        if value is None or isinstance(value, ErrorInfo):
            return value
        if isinstance(value, dict):
            return cls.from_dict(value)
        text = str(value)
        prefix, separator, _ = text.partition(":")
        if separator:
            entry = _CODE_BY_EXCEPTION.get(prefix.strip())
            if entry is not None:
                return cls(text, code=entry[0], retryable=entry[1])
        return cls(text, code="internal")

"""Unit tests for the fixed-shape graph builders."""

import pytest

from repro import (
    chain_graph,
    star_graph,
    cycle_graph,
    clique_graph,
    grid_graph,
    make_shape,
)
from repro.errors import GraphError


class TestChain:
    def test_edges(self):
        g = chain_graph(4)
        assert g.edges == ((0, 1), (1, 2), (2, 3))

    def test_single_vertex(self):
        assert chain_graph(1).n_edges == 0

    def test_connected(self):
        for n in range(1, 10):
            g = chain_graph(n)
            assert g.is_connected(g.all_vertices)

    def test_rejects_nonpositive(self):
        with pytest.raises(GraphError):
            chain_graph(0)


class TestStar:
    def test_hub_degree(self):
        g = star_graph(6)
        assert g.degree(0) == 5
        assert all(g.degree(v) == 1 for v in range(1, 6))

    def test_custom_hub(self):
        g = star_graph(4, hub=2)
        assert g.degree(2) == 3

    def test_rejects_bad_hub(self):
        with pytest.raises(GraphError):
            star_graph(3, hub=3)


class TestCycle:
    def test_edge_count(self):
        for n in range(3, 9):
            assert cycle_graph(n).n_edges == n

    def test_all_degree_two(self):
        g = cycle_graph(7)
        assert g.degree_sequence() == [2] * 7

    def test_rejects_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)


class TestClique:
    def test_edge_count(self):
        for n in range(1, 9):
            assert clique_graph(n).n_edges == n * (n - 1) // 2

    def test_every_pair_joined(self):
        g = clique_graph(5)
        for u in range(5):
            for v in range(u + 1, 5):
                assert g.has_edge(u, v)


class TestGrid:
    def test_dimensions(self):
        g = grid_graph(3, 4)
        assert g.n_vertices == 12
        assert g.n_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_degenerate_grid_is_chain(self):
        assert grid_graph(1, 5).shape_name() == "chain"

    def test_rejects_nonpositive(self):
        with pytest.raises(GraphError):
            grid_graph(0, 3)


class TestMakeShape:
    @pytest.mark.parametrize("shape", ["chain", "star", "cycle", "clique"])
    def test_dispatch(self, shape):
        g = make_shape(shape, 5)
        assert g.shape_name() == shape

    def test_unknown_shape(self):
        with pytest.raises(GraphError):
            make_shape("torus", 5)

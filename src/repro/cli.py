"""Command-line interface: optimize ad-hoc queries from the shell.

Examples::

    repro-optimize --shape chain --n 8
    repro-optimize --shape clique --n 7 --algorithm dpccp --seed 3
    repro-optimize --edges "0-1,1-2,2-0" --cards "100,2000,50" \
        --sels "0-1:0.1,1-2:0.05,2-0:0.5" --cost-model physical
    repro-optimize --shape star --n 9 --compare

Subcommands (``repro-optimize <subcommand> ...`` or
``python -m repro.cli <subcommand> ...``)::

    serve-stats    drive an OptimizerService over a workload and report
                   cache hit/miss/eviction counts, degradation/retry
                   counters, breaker states, and per-algorithm latency
                   percentiles (optionally as JSON); resilience knobs:
                   --max-ccp-budget, --breaker-threshold,
                   --breaker-cooldown, --retries
    serve          run the sharded async HTTP front door (v1 wire API,
                   see docs/SERVING.md): --shards worker processes with
                   private plan caches, consistent-hash routing,
                   per-tenant --quota admission, bounded queues with
                   429 backpressure, /metrics Prometheus export
    replay         replay a seeded multi-tenant query stream (in-process
                   or against a live front door via --host/--port) and
                   render the fleet dashboard: per-request event log,
                   REPLAY.json summary, and every registered figure
                   (see docs/REPLAY.md)
    backends       report which enumeration backends (pure python, numpy
                   batch-DP, compiled C kernel) are available on this
                   host and which one the auto-selector would pick;
                   --build compiles the C kernel eagerly, --json emits
                   the raw status document
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from typing import List, Optional

from repro.catalog.statistics import Catalog, Relation
from repro.catalog.workload import WorkloadGenerator, attach_random_statistics
from repro.cost.cout import CoutCostModel
from repro.cost.physical import PhysicalCostModel
from repro.errors import ReproError
from repro.graph.query_graph import QueryGraph
from repro.optimizer.api import ALGORITHMS, optimize_query

__all__ = ["main"]


def _parse_edges(spec: str) -> List[tuple]:
    """Parse ``"0-1,1-2"`` into [(0, 1), (1, 2)]."""
    edges = []
    for chunk in spec.split(","):
        left, _, right = chunk.partition("-")
        edges.append((int(left), int(right)))
    return edges


def _build_catalog(args) -> Catalog:
    if args.workload:
        family, _, query = args.workload.partition(":")
        builders = {}
        from repro.workloads import job_query, ssb_query, tpch_query

        builders = {"tpch": tpch_query, "ssb": ssb_query, "job": job_query}
        if family not in builders:
            raise ReproError(
                f"unknown workload family {family!r}; expected one of "
                f"{sorted(builders)} (e.g. tpch:q5)"
            )
        if not query:
            raise ReproError(
                f"workload spec needs a query name, e.g. {family}:q5"
            )
        return builders[family](query, scale_factor=args.scale_factor)
    if args.edges:
        edges = _parse_edges(args.edges)
        n = max(max(e) for e in edges) + 1
        graph = QueryGraph(n, edges)
        if args.cards:
            cards = [float(c) for c in args.cards.split(",")]
            relations = [
                Relation(f"R{i}", card) for i, card in enumerate(cards)
            ]
        else:
            return attach_random_statistics(graph, seed=args.seed)
        selectivities = {}
        if args.sels:
            for chunk in args.sels.split(","):
                edge_spec, _, value = chunk.partition(":")
                u, _, v = edge_spec.partition("-")
                selectivities[(int(u), int(v))] = float(value)
        else:
            selectivities = {e: 0.1 for e in graph.edges}
        return Catalog(graph, relations, selectivities)
    generator = WorkloadGenerator(seed=args.seed)
    if args.shape == "cyclic":
        return generator.random_cyclic_uniform_edges(args.n).catalog
    if args.shape == "acyclic":
        return generator.random_acyclic(args.n).catalog
    return generator.fixed_shape(args.shape, args.n).catalog


def _serve_stats_main(argv: List[str]) -> int:
    """``serve-stats``: run a workload through an OptimizerService.

    Generates ``--count`` distinct queries of the requested shape, runs
    ``--repeat`` batch passes over them (passes beyond the first are
    warm), then prints the service's ``stats_snapshot()``.
    """
    parser = argparse.ArgumentParser(
        prog="repro-optimize serve-stats",
        description="Serve a workload from a long-lived OptimizerService "
        "and report plan-cache and latency statistics.",
    )
    parser.add_argument(
        "--shape",
        choices=["chain", "star", "cycle", "clique", "acyclic", "cyclic"],
        default="chain",
        help="generated query graph shape",
    )
    parser.add_argument("--n", type=int, default=8, help="relations per query")
    parser.add_argument(
        "--count", type=int, default=8, help="distinct queries to generate"
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="batch passes over the query set (passes > 1 hit the cache)",
    )
    parser.add_argument("--workers", type=int, default=4, help="batch workers")
    parser.add_argument(
        "--executor",
        choices=["serial", "thread", "process"],
        default="thread",
        help="batch backend: process = one worker process per item "
        "(true multi-core, hard deadlines), thread = shared-GIL pool "
        "(soft deadlines), serial = calling thread",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="per-item wall-clock budget; items past it resolve to an "
        "error (or heuristic fallback) instead of stalling the batch",
    )
    parser.add_argument(
        "--fallback",
        action="store_true",
        help="serve a greedy (GOO) heuristic plan for items that "
        "exceed --deadline instead of an error result",
    )
    parser.add_argument(
        "--algorithm",
        default="auto",
        help='registry algorithm name or "auto" (default)',
    )
    parser.add_argument(
        "--capacity", type=int, default=512, help="plan cache capacity"
    )
    parser.add_argument(
        "--pruning", action="store_true", help="enable branch-and-bound pruning"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--max-ccp-budget",
        type=int,
        metavar="CCPS",
        help="admission budget: requests whose estimated csg-cmp-pair "
        "count exceeds this are served from the degradation ladder "
        "(IKKBZ for acyclic graphs, GOO otherwise) instead of the "
        "exact enumerator",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        metavar="K",
        help="consecutive failures/timeouts per algorithm label before "
        "its circuit breaker opens (default 5)",
    )
    parser.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="seconds an open breaker waits before admitting a "
        "half-open probe (default 30)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="max retries per item for transient process-worker "
        "failures (crashes/corrupt payloads; default 0 = off)",
    )
    parser.add_argument(
        "--load-cache", metavar="PATH", help="warm the cache from a JSON file"
    )
    parser.add_argument(
        "--save-cache", metavar="PATH", help="persist the cache to a JSON file"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw snapshot as JSON (alias for --format json)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "prometheus"],
        default="text",
        help="output format: human-readable text (default), raw snapshot "
        "JSON, or Prometheus text exposition format",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree of the most recent request as JSON "
        "(after the stats output)",
    )
    parser.add_argument(
        "--slow-log-ms",
        type=float,
        metavar="MS",
        help="log a WARNING with a per-stage breakdown for any request "
        "slower than this threshold",
    )
    args = parser.parse_args(argv)

    from repro.optimizer.api import OptimizationRequest
    from repro.service import OptimizerService, ResilienceConfig, render_prometheus

    try:
        generator = WorkloadGenerator(seed=args.seed)
        instances = list(
            generator.series(args.shape, [args.n], per_size=args.count)
        )
        resilience = ResilienceConfig(
            max_ccp_budget=args.max_ccp_budget,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_seconds=args.breaker_cooldown,
            max_retries=args.retries,
        )
        service = OptimizerService(
            cache_capacity=args.capacity,
            resilience=resilience,
            slow_log_ms=args.slow_log_ms,
        )
        if args.load_cache:
            loaded = service.load_cache(args.load_cache)
            print(f"warmed cache with {loaded} entries from {args.load_cache}")
        requests = [
            OptimizationRequest(
                query=instance,
                algorithm=args.algorithm,
                enable_pruning=args.pruning,
                tag=f"q{i}",
            )
            for i, instance in enumerate(instances)
        ]
        for _ in range(max(1, args.repeat)):
            results = service.optimize_batch(
                requests,
                workers=args.workers,
                executor=args.executor,
                deadline_seconds=args.deadline,
                fallback="goo" if args.fallback else None,
            )
        failed = [r for r in results if not r.ok]
        snapshot = service.stats_snapshot()
        if args.save_cache:
            saved = service.save_cache(args.save_cache)
            print(f"saved {saved} cache entries to {args.save_cache}")
        output_format = "json" if args.json else args.format

        def _print_trace() -> None:
            if not args.trace:
                return
            last = service.traces.last()
            if last is None:
                print("no trace recorded", file=sys.stderr)
            else:
                print(json.dumps(last.to_dict(), indent=2, sort_keys=True))

        if output_format == "json":
            print(json.dumps(snapshot, indent=2, sort_keys=True))
            _print_trace()
            return 0
        if output_format == "prometheus":
            sys.stdout.write(render_prometheus(snapshot))
            _print_trace()
            return 0
        totals, cache = snapshot["totals"], snapshot["cache"]
        print(
            f"requests={totals['requests']} errors={totals['errors']} "
            f"cache_hits={totals['cache_hits']} "
            f"cache_misses={totals['cache_misses']} "
            f"timeouts={totals.get('timeouts', 0)} "
            f"fallbacks={totals.get('fallbacks', 0)} "
            f"degraded={totals.get('degraded', 0)} "
            f"fast_exact={totals.get('fast_exact', 0)} "
            f"retries={totals.get('retries', 0)} "
            f"kernel_fast={totals.get('kernel_fast', 0)} "
            f"kernel_reference={totals.get('kernel_reference', 0)} "
            f"kernel_dpconv={totals.get('kernel_dpconv', 0)} "
            f"kernel_native_numpy={totals.get('kernel_native_numpy', 0)} "
            f"kernel_native_c={totals.get('kernel_native_c', 0)}"
        )
        backends = snapshot.get("backends")
        if backends:
            print(
                f"backends: resolved={backends.get('resolved')} "
                f"requested={backends.get('requested')} "
                f"numpy={backends.get('numpy', {}).get('available')} "
                f"c_kernel={backends.get('c_kernel', {}).get('built')}"
            )
        breakers = snapshot.get("breaker", {})
        open_breakers = {
            name: slot
            for name, slot in breakers.items()
            if slot.get("state") != "closed"
        }
        if open_breakers:
            for name, slot in sorted(open_breakers.items()):
                print(
                    f"breaker: {name} state={slot['state']} "
                    f"consecutive_failures={slot['consecutive_failures']}"
                )
        print(
            f"cache: size={cache['size']}/{cache['capacity']} "
            f"hits={cache['hits']} misses={cache['misses']} "
            f"evictions={cache['evictions']}"
        )
        for name, stats in snapshot["algorithms"].items():
            latency = stats["latency"]
            print(
                f"  {name:18s} count={stats['count']:<5d} "
                f"hits={stats['cache_hits']:<5d} errors={stats['errors']:<3d} "
                f"p50={latency.get('p50_ms', 0):.2f}ms "
                f"p95={latency.get('p95_ms', 0):.2f}ms "
                f"p99={latency.get('p99_ms', 0):.2f}ms"
            )
        if failed:
            print(f"failed queries: {[r.tag for r in failed]}", file=sys.stderr)
        _print_trace()
        return 0
    except (ReproError, OSError) as exc:
        # OSError covers --load-cache/--save-cache path problems (missing
        # file, unwritable directory); corruption inside an existing cache
        # file is NOT an error — it loads as empty/partial with a warning.
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _backends_main(argv: List[str]) -> int:
    """``backends``: report native enumeration backend availability.

    Shows what :mod:`repro.optimizer.native` can use on this host —
    numpy, cffi, a C compiler, a cached compiled kernel — and which
    backend the auto-selector resolves to for the symmetric-cost exact
    tier.  ``--build`` compiles the C kernel now (so first-request
    latency never pays for it); ``--json`` dumps the same document the
    service embeds under ``backends`` in ``/v1/stats``.
    """
    parser = argparse.ArgumentParser(
        prog="repro-optimize backends",
        description="Report native enumeration backend availability "
        "(numpy batch-DP, compiled C kernel) and the auto-selector's "
        "resolution on this host.",
    )
    parser.add_argument(
        "--build",
        action="store_true",
        help="compile the C kernel now if a toolchain is available "
        "(otherwise it is built lazily on first explicit request)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw status document as JSON",
    )
    args = parser.parse_args(argv)

    from repro.optimizer import native
    from repro.optimizer._native_build import load_c_kernel

    if args.build:
        kernel = load_c_kernel(build=True)
        if kernel is None and not args.json:
            print(
                "C kernel build failed or no toolchain available "
                "(falling back is automatic)",
                file=sys.stderr,
            )
    status = native.native_backend_status()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    numpy_info = status["numpy"]
    cffi_info = status["cffi"]
    compiler = status["compiler"]
    c_kernel = status["c_kernel"]
    print(f"requested: {status['requested']} (env {native.NATIVE_KERNEL_ENV})")
    print(f"resolved:  {status['resolved']}")
    print(
        "numpy:     "
        + (
            f"available ({numpy_info['version']})"
            if numpy_info["available"]
            else "missing"
        )
    )
    print(
        "cffi:      "
        + (
            f"available ({cffi_info['version']})"
            if cffi_info["available"]
            else "missing"
        )
    )
    print(
        "compiler:  "
        + (f"{compiler['cc']}" if compiler["available"] else "missing")
    )
    if c_kernel["built"]:
        print(f"c kernel:  built ({c_kernel['path']}, tag {c_kernel['tag']})")
    else:
        print("c kernel:  not built")
    print(
        f"limits:    numpy n<={status['max_n']['numpy']}, "
        f"c n<={status['max_n']['c']} (larger queries use pure python)"
    )
    return 0


def _serve_main(argv: List[str]) -> int:
    """``serve``: run the sharded HTTP front door until interrupted."""
    parser = argparse.ArgumentParser(
        prog="repro-optimize serve",
        description="Serve the v1 optimize wire API over HTTP: consistent-"
        "hash routing onto shard processes (each with a private plan "
        "cache), per-tenant admission quotas, and bounded per-shard "
        "queues that reject overload with 429.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8972,
        help="bind port (0 = pick an ephemeral port; the chosen port is "
        "printed on the 'listening on' line)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="worker shard processes, each owning a private "
        "OptimizerService (default 2)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="requests a shard may have queued before new ones are "
        "rejected with 429 over_capacity (default 16)",
    )
    parser.add_argument(
        "--quota",
        type=float,
        metavar="RPS",
        help="per-tenant admission quota in requests/second (token "
        "bucket; omit for no quota)",
    )
    parser.add_argument(
        "--quota-burst",
        type=float,
        default=10.0,
        metavar="N",
        help="token-bucket burst per tenant (default 10)",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=512,
        help="plan cache capacity per shard (default 512)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-request wall budget including shard queue time; a "
        "shard that blows it is recycled (default 30)",
    )
    parser.add_argument(
        "--max-ccp-budget",
        type=int,
        metavar="CCPS",
        help="per-shard admission budget: over-budget requests are "
        "served from the degradation ladder instead of the exact "
        "enumerator",
    )
    parser.add_argument(
        "--warm-cache",
        metavar="PATH",
        help="plan cache snapshot to warm shards from at spin-up (each "
        "shard loads only the entries the hash ring assigns to it)",
    )
    parser.add_argument(
        "--snapshot",
        metavar="PATH",
        help="per-shard plan-cache snapshot base path (shard i writes "
        "PATH.shard<i>): persisted on graceful shutdown and, with "
        "--snapshot-interval, periodically; respawned shards re-warm "
        "from their latest snapshot",
    )
    parser.add_argument(
        "--snapshot-interval",
        type=float,
        metavar="SECONDS",
        help="seconds between periodic cache snapshots (requires "
        "--snapshot; omit to snapshot only on graceful shutdown)",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="on SIGTERM/SIGINT, wait up to this long for in-flight "
        "requests before shutting shards down (default 5)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=64,
        help="virtual nodes per shard on the consistent-hash ring "
        "(default 64)",
    )
    args = parser.parse_args(argv)

    import asyncio

    from repro.service import FrontDoor, FrontDoorConfig, ResilienceConfig

    service_kwargs = {"cache_capacity": args.capacity}
    if args.max_ccp_budget is not None:
        service_kwargs["resilience"] = ResilienceConfig(
            max_ccp_budget=args.max_ccp_budget
        )
    config = FrontDoorConfig(
        host=args.host,
        port=args.port,
        shards=args.shards,
        queue_limit=args.queue_limit,
        quota_rate=args.quota,
        quota_burst=args.quota_burst,
        deadline_seconds=args.deadline,
        ring_replicas=args.replicas,
        warm_cache_path=args.warm_cache,
        snapshot_path=args.snapshot,
        snapshot_interval_seconds=args.snapshot_interval,
        drain_grace_seconds=args.drain_grace,
        shard_service_kwargs=service_kwargs,
    )

    async def run() -> None:
        import signal

        door = FrontDoor(config)
        await door.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # platforms without loop signal support
        print(f"listening on {config.host}:{door.port}", flush=True)
        serving = asyncio.ensure_future(door.serve_forever())
        stopping = asyncio.ensure_future(stop.wait())
        try:
            await asyncio.wait(
                {serving, stopping}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            serving.cancel()
            stopping.cancel()
            if stop.is_set():
                # Graceful drain: stop accepting, let in-flight requests
                # finish within the grace, persist shard caches, exit.
                print("draining...", flush=True)
                await door.drain()
            else:
                await door.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _result_document(result) -> dict:
    """Deprecated: build the JSON document for one optimization result.

    .. deprecated::
        Use :meth:`repro.optimizer.api.OptimizationResult.to_dict`
        directly; this shim remains only for scripts that imported it.
    """
    warnings.warn(
        "_result_document is deprecated; use OptimizationResult.to_dict()",
        DeprecationWarning,
        stacklevel=2,
    )
    return result.to_dict()


def _replay_main(argv: List[str]) -> int:
    from repro.bench.replay import main as replay_main

    return replay_main(argv)


#: Subcommand name -> entry point; checked before flat-flag parsing.
SUBCOMMANDS = {
    "serve-stats": _serve_stats_main,
    "serve": _serve_main,
    "replay": _replay_main,
    "backends": _backends_main,
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in SUBCOMMANDS:
        return SUBCOMMANDS[argv[0]](argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-optimize",
        description="Join-order optimization with top-down enumeration "
        "(Fender & Moerkotte, ICDE 2011).",
    )
    source = parser.add_argument_group("query source")
    source.add_argument(
        "--shape",
        choices=["chain", "star", "cycle", "clique", "acyclic", "cyclic"],
        default="chain",
        help="generated query graph shape",
    )
    source.add_argument("--n", type=int, default=6, help="number of relations")
    source.add_argument(
        "--edges",
        help='explicit edge list, e.g. "0-1,1-2,2-0" (overrides --shape)',
    )
    source.add_argument(
        "--cards", help='explicit cardinalities, e.g. "100,2000,50"'
    )
    source.add_argument(
        "--sels", help='explicit selectivities, e.g. "0-1:0.1,1-2:0.05"'
    )
    source.add_argument("--seed", type=int, default=0, help="statistics seed")
    source.add_argument(
        "--workload",
        help='benchmark query, e.g. "tpch:q5", "ssb:q4.1", "job:j12" '
        "(overrides --shape/--edges)",
    )
    source.add_argument(
        "--scale-factor",
        type=float,
        default=1.0,
        help="scale factor for --workload schemas",
    )

    run = parser.add_argument_group("optimization")
    run.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="tdmincutbranch",
    )
    run.add_argument(
        "--cost-model", choices=["cout", "physical"], default="cout"
    )
    run.add_argument(
        "--pruning", action="store_true", help="enable branch-and-bound pruning"
    )
    run.add_argument(
        "--compare",
        action="store_true",
        help="run every algorithm and report each runtime",
    )
    run.add_argument(
        "--explain",
        action="store_true",
        help="print a full EXPLAIN report (search space, counters, plan)",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit the result as a versioned optimization_result JSON "
        "document (the same schema the serve API returns) instead of "
        "the text summary",
    )
    args = parser.parse_args(argv)

    try:
        catalog = _build_catalog(args)
        cost_model = (
            PhysicalCostModel() if args.cost_model == "physical" else CoutCostModel()
        )
        if args.explain:
            from repro.analysis.explain import explain

            print(
                explain(
                    catalog,
                    algorithm=args.algorithm,
                    cost_model=cost_model,
                    enable_pruning=args.pruning,
                )
            )
            return 0
        if args.compare:
            print(
                f"query: {catalog.graph.n_vertices} relations, "
                f"{catalog.graph.n_edges} join edges "
                f"({catalog.graph.shape_name()})"
            )
            for name in sorted(ALGORITHMS):
                try:
                    result = optimize_query(
                        catalog, algorithm=name, cost_model=cost_model
                    )
                except ReproError as exc:
                    print(f"  {name:18s} failed: {exc}")
                    continue
                print(f"  {result.summary()}")
            return 0
        result = optimize_query(
            catalog,
            algorithm=args.algorithm,
            cost_model=cost_model,
            enable_pruning=args.pruning,
        )
        if args.json:
            print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
            return 0
        print(result.summary())
        print()
        print(result.plan.pretty())
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

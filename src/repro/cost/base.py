"""Cost model interface.

A cost model prices one two-way join given the input and output
cardinalities; plan costs accumulate bottom-up (cost of a tree = cost of
its root join + costs of both subtrees).  The interface returns the name of
the chosen join implementation together with the cost so ``CreateTree``
can record the cheapest physical alternative, as the paper's Fig. 2
commentary requires ("If different join implementations have to be
considered, among all alternatives the cheapest join tree has to be built").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["CostModel", "JoinImplementation"]


@dataclass(frozen=True)
class JoinImplementation:
    """A physical join operator with a simple two-parameter linear cost.

    ``cost = left_coefficient * |L| + right_coefficient * |R| + output_weight * |out|``
    plus optional ``log``-factors handled by subclass overrides.  This is the
    "few arithmetic operations" family of Haas et al. the paper cites for
    join cost functions.
    """

    name: str

    def cost(
        self, left_card: float, right_card: float, output_card: float
    ) -> float:
        """Return the local cost of joining (left as build/outer side)."""
        raise NotImplementedError


class CostModel(abc.ABC):
    """Prices a single join; implementations must be deterministic."""

    #: Human-readable model name for reports.
    name: str = "abstract"

    #: Declares ``join_cost(a, b, o) == join_cost(b, a, o)`` for all
    #: inputs.  Symmetric models (like C_out) make the two orientations
    #: of a ccp equally expensive, so :class:`~repro.plan.builder.PlanBuilder`
    #: and the fast kernel price only the first orientation — provably
    #: equivalent under BuildTree's strict ``<`` comparison (an equal
    #: second orientation can never replace the first) — halving
    #: ``cost_evaluations`` per ccp.  Asymmetric models keep the default
    #: ``False`` and are priced both ways, per Fig. 2.
    symmetric: bool = False

    @abc.abstractmethod
    def join_cost(
        self, left_card: float, right_card: float, output_card: float
    ) -> Tuple[float, str]:
        """Return ``(cost, implementation_name)`` for the cheapest join.

        ``left_card``/``right_card`` are the input cardinalities in the
        orientation being priced (callers price both orientations for
        asymmetric models, per BuildTree in Fig. 2); ``output_card`` is
        the join result size.  The returned cost is the *local* cost of
        this join only.
        """

    def is_symmetric(self) -> bool:
        """True iff ``join_cost(a, b, o) == join_cost(b, a, o)`` always.

        Reads the :attr:`symmetric` class flag; subclasses normally set
        the flag rather than override this method.  Consumers resolve it
        once per optimization run, never per ccp.
        """
        return self.symmetric

    def signature_fields(self) -> Dict[str, Any]:
        """Return the parameters that influence this model's costs.

        The plan cache keys on the cost-model *class name* plus this
        dict, so two differently-parameterized instances of the same
        class (say, :class:`~repro.cost.physical.PhysicalCostModel` with
        different output weights) must not collide to one cache entry.
        Parameterless models keep the default ``{}``; parameterized
        models must override and return every knob, JSON-serializable.
        The same dict is what :func:`repro.serialize.cost_model_to_dict`
        ships to process-pool workers, so the fields should be accepted
        by the class constructor as keyword arguments.
        """
        return {}

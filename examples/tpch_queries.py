#!/usr/bin/env python
"""Optimize TPC-H's join subgraphs — the workload the intro motivates.

Runs every modelled TPC-H query through the optimizer, showing query
graph shape, search-space size, chosen join order and how far greedy
ordering strays from the optimum on real FK statistics.

Run:  python examples/tpch_queries.py [scale_factor]
"""

import sys

from repro import optimize_query
from repro.enumeration.counting import count_ccps
from repro.heuristics import greedy_operator_ordering
from repro.workloads import tpch_query, tpch_query_names


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    print(f"TPC-H join subgraphs at SF={scale_factor:g}\n")
    print(f"{'query':6s} {'shape':7s} {'rel':>3s} {'ccps':>5s} "
          f"{'opt cost':>12s} {'greedy/opt':>10s}  join order")
    for name in tpch_query_names():
        catalog = tpch_query(name, scale_factor=scale_factor)
        graph = catalog.graph
        result = optimize_query(catalog)
        greedy = greedy_operator_ordering(catalog)
        ratio = greedy.cost / result.cost if result.cost > 0 else 1.0
        print(
            f"{name:6s} {graph.shape_name():7s} {graph.n_vertices:>3d} "
            f"{count_ccps(graph):>5d} {result.cost:>12.4g} "
            f"{ratio:>10.2f}  {result.plan.to_expression()}"
        )
    print(
        "\nQ5 and Q9 are cyclic: their nation/equality-class edges close"
        "\ncycles, which is exactly where MinCutBranch's O(1)-per-ccp"
        "\npartitioning separates from MinCutLazy (paper Figs. 13-17)."
    )


if __name__ == "__main__":
    main()

"""Cost models and cardinality estimation."""

from repro.cost.base import CostModel, JoinImplementation
from repro.cost.cout import CoutCostModel
from repro.cost.physical import (
    PhysicalCostModel,
    NestedLoopJoin,
    HashJoin,
    SortMergeJoin,
)
from repro.cost.cardinality import CardinalityEstimator

__all__ = [
    "CostModel",
    "JoinImplementation",
    "CoutCostModel",
    "PhysicalCostModel",
    "NestedLoopJoin",
    "HashJoin",
    "SortMergeJoin",
    "CardinalityEstimator",
]

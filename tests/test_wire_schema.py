"""Tests for the v1 wire schema: typed errors, versioned envelopes,
request/result ``to_dict``/``from_dict``, signature-rounding edge cases,
and the sharding primitives (hash ring, token buckets)."""

import json
import math
import warnings

import pytest

from repro.catalog.statistics import Catalog, Relation
from repro.catalog.workload import WorkloadGenerator
from repro.cost.cout import CoutCostModel
from repro.errors import (
    AdmissionError,
    CatalogError,
    CircuitOpenError,
    DeadlineExceededError,
    DisconnectedGraphError,
    ErrorInfo,
    InvalidRequestError,
    OptimizationError,
    UnsupportedVersionError,
)
from repro.graph.query_graph import QueryGraph
from repro.optimizer.api import OptimizationRequest, OptimizationResult
from repro import serialize
from repro.service import request_signature
from repro.service.core import _round_significant
from repro.service.sharding import (
    ConsistentHashRing,
    HTTP_STATUS_BY_CODE,
    TenantQuotas,
    TokenBucket,
    http_status_for_code,
    parse_request_document,
)


def chain3_catalog() -> Catalog:
    graph = QueryGraph(3, [(0, 1), (1, 2)])
    relations = [Relation("R0", 100.0), Relation("R1", 2000.0), Relation("R2", 50.0)]
    return Catalog(graph, relations, {(0, 1): 0.1, (1, 2): 0.05})


# ----------------------------------------------------------------------
# ErrorInfo
# ----------------------------------------------------------------------


class TestErrorInfo:
    def test_is_a_string(self):
        info = ErrorInfo("boom", code="internal")
        assert isinstance(info, str)
        assert info == "boom"
        assert info.message == "boom"
        assert "boo" in info

    def test_round_trip(self):
        info = ErrorInfo("deadline blown", code="deadline_exceeded", retryable=True)
        document = info.to_dict()
        assert document == {
            "code": "deadline_exceeded",
            "message": "deadline blown",
            "retryable": True,
        }
        back = ErrorInfo.from_dict(json.loads(json.dumps(document)))
        assert back == info
        assert back.code == "deadline_exceeded"
        assert back.retryable is True

    @pytest.mark.parametrize(
        "exc,code,retryable",
        [
            (DeadlineExceededError("slow"), "deadline_exceeded", True),
            (AdmissionError("over budget"), "admission_rejected", False),
            (CircuitOpenError("open"), "breaker_open", True),
            (UnsupportedVersionError("v99"), "unsupported_version", False),
            (InvalidRequestError("junk"), "invalid_request", False),
            (DisconnectedGraphError("split"), "invalid_query", False),
            (CatalogError("bad stats"), "invalid_query", False),
            (OptimizationError("died"), "optimization_failed", False),
            (ValueError("misc"), "internal", False),
        ],
    )
    def test_from_exception_codes(self, exc, code, retryable):
        info = ErrorInfo.from_exception(exc)
        assert info.code == code
        assert info.retryable is retryable
        # Legacy "TypeName: message" shape is preserved.
        assert info == f"{type(exc).__name__}: {exc}"

    def test_coerce_legacy_string_recovers_code(self):
        info = ErrorInfo.coerce("DeadlineExceededError: too slow")
        assert info.code == "deadline_exceeded"
        assert info.retryable is True
        assert ErrorInfo.coerce("whatever happened").code == "internal"
        assert ErrorInfo.coerce(None) is None
        again = ErrorInfo.coerce(info)
        assert again is info

    def test_pickle_preserves_code_and_retryable(self):
        # Regression guard for the process-executor boundary: a pickled
        # ErrorInfo must come back as an ErrorInfo with both typed
        # attributes intact, at every protocol.  (It does out of the
        # box: ``str.__getnewargs__`` rebuilds the string value and the
        # instance ``__dict__`` restores ``code``/``retryable``.)
        import pickle

        info = ErrorInfo(
            "worker crashed", code="worker_crashed", retryable=True
        )
        for protocol in range(pickle.HIGHEST_PROTOCOL + 1):
            back = pickle.loads(pickle.dumps(info, protocol))
            assert type(back) is ErrorInfo, protocol
            assert back == "worker crashed"
            assert back.code == "worker_crashed", protocol
            assert back.retryable is True, protocol

    def test_copy_and_deepcopy_preserve_attributes(self):
        import copy

        info = ErrorInfo("timed out", code="deadline_exceeded", retryable=True)
        for clone in (copy.copy(info), copy.deepcopy(info)):
            assert type(clone) is ErrorInfo
            assert clone == info
            assert clone.code == "deadline_exceeded"
            assert clone.retryable is True

    def test_attributes_survive_wire_v1_result_round_trip(self):
        # Full serialize path: result -> dict -> JSON -> dict -> result.
        result = OptimizationResult(
            plan=None,
            algorithm="goo",
            elapsed_seconds=0.0,
            memo_entries=0,
            cost_evaluations=0,
            cardinality_estimations=0,
            error=ErrorInfo(
                "CircuitOpenError: breaker tripped",
                code="breaker_open",
                retryable=True,
            ),
        )
        document = serialize.result_to_dict(result)
        back = serialize.result_from_dict(json.loads(json.dumps(document)))
        assert type(back.error) is ErrorInfo
        assert back.error == "CircuitOpenError: breaker tripped"
        assert back.error.code == "breaker_open"
        assert back.error.retryable is True

    def test_executor_style_payload_recovers_code(self):
        # The process executor ships failures as ("error", type_name,
        # message) and the parent rebuilds "TypeName: message"; coerce
        # must recover the typed code from that legacy shape.
        payload = ("error", "DeadlineExceededError", "item blew its budget")
        info = ErrorInfo.coerce(f"{payload[1]}: {payload[2]}")
        assert info.code == "deadline_exceeded"
        assert info.retryable is True

    def test_every_code_has_an_http_status(self):
        from repro.errors import _CODE_BY_EXCEPTION

        for code, _retryable in _CODE_BY_EXCEPTION.values():
            assert code in HTTP_STATUS_BY_CODE
        assert http_status_for_code("no_such_code") == 500


# ----------------------------------------------------------------------
# Versioned envelopes
# ----------------------------------------------------------------------


class TestVersioning:
    def test_documents_carry_version_1(self):
        request = OptimizationRequest(
            query=chain3_catalog(), algorithm="tdmincutbranch"
        )
        document = serialize.request_to_dict(request)
        assert document["version"] == serialize.FORMAT_VERSION == 1
        assert document["query"]["version"] == 1
        assert document["query"]["graph"]["version"] == 1

    def test_missing_version_reads_as_v1(self):
        request = OptimizationRequest(
            query=chain3_catalog(), algorithm="tdmincutbranch"
        )
        document = serialize.request_to_dict(request)
        document.pop("version")
        document["query"].pop("version")
        back = serialize.request_from_dict(document)
        assert back.algorithm == "tdmincutbranch"

    @pytest.mark.parametrize("bad", [99, 0, -1, "2", 1.5, True])
    def test_unsupported_or_malformed_version_raises_typed(self, bad):
        request = OptimizationRequest(
            query=chain3_catalog(), algorithm="tdmincutbranch"
        )
        document = serialize.request_to_dict(request)
        document["version"] = bad
        with pytest.raises(UnsupportedVersionError):
            serialize.request_from_dict(document)

    def test_unknown_extra_keys_are_tolerated(self):
        request = OptimizationRequest(
            query=chain3_catalog(), algorithm="tdmincutbranch"
        )
        document = serialize.request_to_dict(request)
        document["future_field"] = {"anything": 1}
        serialize.request_from_dict(document)

    def test_parse_request_document_wraps_garbage(self):
        with pytest.raises(InvalidRequestError):
            parse_request_document({"kind": "nonsense"})
        document = serialize.request_to_dict(
            OptimizationRequest(query=chain3_catalog(), algorithm="tdmincutbranch")
        )
        document["version"] = 99
        # Typed errors pass through unwrapped.
        with pytest.raises(UnsupportedVersionError):
            parse_request_document(document)


# ----------------------------------------------------------------------
# to_dict / from_dict on the API dataclasses
# ----------------------------------------------------------------------


class TestApiDictMethods:
    def test_request_round_trip(self):
        request = OptimizationRequest(
            query=chain3_catalog(),
            algorithm="tdmincutbranch",
            cost_model=CoutCostModel(),
            enable_pruning=True,
            tag="q1",
        )
        back = OptimizationRequest.from_dict(request.to_dict())
        assert back.algorithm == "tdmincutbranch"
        assert back.enable_pruning is True
        assert back.tag == "q1"
        assert back.query.graph.edges == request.query.graph.edges

    def test_result_round_trip_with_typed_error(self):
        result = OptimizationResult(
            plan=None,
            algorithm="tdmincutbranch",
            elapsed_seconds=0.5,
            memo_entries=0,
            cost_evaluations=0,
            cardinality_estimations=0,
            error=ErrorInfo("slow", code="deadline_exceeded", retryable=True),
            tag="q9",
        )
        document = result.to_dict()
        assert document["error"] == {
            "code": "deadline_exceeded",
            "message": "slow",
            "retryable": True,
        }
        back = OptimizationResult.from_dict(json.loads(json.dumps(document)))
        assert back.error == "slow"
        assert back.error.code == "deadline_exceeded"
        assert back.error_info.retryable is True

    def test_result_reader_accepts_legacy_string_error(self):
        result = OptimizationResult(
            plan=None,
            algorithm="goo",
            elapsed_seconds=0.0,
            memo_entries=0,
            cost_evaluations=0,
            cardinality_estimations=0,
        )
        document = result.to_dict()
        document["error"] = "DeadlineExceededError: way too slow"
        back = OptimizationResult.from_dict(document)
        assert back.error_info.code == "deadline_exceeded"

    def test_service_error_results_carry_codes(self):
        from repro.service import OptimizerService

        service = OptimizerService(cache_capacity=4)
        # Two disconnected components without cross products: a typed,
        # deterministic failure the batch isolates into an error result.
        disconnected = Catalog(
            QueryGraph(4, [(0, 1), (2, 3)]),
            [Relation(f"R{i}", 10.0) for i in range(4)],
            {(0, 1): 0.5, (2, 3): 0.5},
        )
        results = service.optimize_batch(
            [
                OptimizationRequest(
                    query=disconnected, algorithm="tdmincutbranch", tag="bad"
                )
            ],
            executor="serial",
        )
        assert results[0].error is not None
        assert results[0].error_info.code == "invalid_query"
        assert results[0].error_info.retryable is False

    def test_cli_result_document_shim_warns(self):
        from repro.cli import _result_document

        result = OptimizationResult(
            plan=None,
            algorithm="goo",
            elapsed_seconds=0.0,
            memo_entries=0,
            cost_evaluations=0,
            cardinality_estimations=0,
        )
        with pytest.deprecated_call():
            document = _result_document(result)
        assert document["kind"] == "optimization_result"
        assert document["version"] == 1


# ----------------------------------------------------------------------
# _round_significant edge cases + pinned signatures
# ----------------------------------------------------------------------


class TestRounding:
    def test_zero_and_negative_zero_normalize(self):
        assert _round_significant(0.0, 4) == 0.0
        assert math.copysign(1.0, _round_significant(-0.0, 4)) == 1.0
        assert json.dumps(_round_significant(-0.0, 4)) == "0.0"

    def test_negative_values_round_by_magnitude(self):
        assert _round_significant(-123456.0, 3) == -123000.0
        assert _round_significant(-0.0012349, 3) == pytest.approx(-0.00123)

    def test_denormals_do_not_collapse_to_zero(self):
        tiny = 5e-324  # smallest positive subnormal
        rounded = _round_significant(tiny, 4)
        assert rounded != 0.0
        assert _round_significant(2e-308, 4) != 0.0

    def test_huge_int_statistics_round_exactly(self):
        value = 10**400 + 12345
        rounded = _round_significant(value, 4)
        assert rounded == 10**400
        with pytest.raises(OverflowError):
            math.isfinite(value)  # the guard this exercises

    def test_signature_accepts_huge_int_cardinality(self):
        graph = QueryGraph(2, [(0, 1)])
        catalog = Catalog(
            graph,
            [Relation("R0", 10**400), Relation("R1", 10.0)],
            {(0, 1): 0.5},
        )
        signature, _ = request_signature(catalog, "tdmincutbranch")
        assert len(signature) == 64

    def test_signature_rejects_non_finite_statistics(self):
        graph = QueryGraph(2, [(0, 1)])
        catalog = Catalog(
            graph,
            [Relation("R0", float("inf")), Relation("R1", 10.0)],
            {(0, 1): 0.5},
        )
        with pytest.raises(OptimizationError, match="non-finite cardinality"):
            request_signature(catalog, "tdmincutbranch")

    def test_rounding_never_underflows_a_nonzero_stat_to_zero(self):
        # A rounded value of exactly 0.0 would collide with true zero in
        # the signature payload; the guard keeps the original instead.
        for value in (5e-324, -5e-324, 1e-320):
            assert _round_significant(value, 4) != 0.0


#: Pinned request signatures — these are cache keys and shard-routing
#: keys; changing them silently invalidates every persisted cache
#: snapshot and reshuffles shard ownership.  If a change here is
#: intentional, bump FORMAT_VERSION thinking and re-pin.
PINNED_SIGNATURES = {
    "chain3": "db5060e8039b672951765a0d6fa504ac885d2fd7eed788292cce29c337197a18",
    "denormal_sel": "640d7d90e4c74e2f0c95aa75c45ecc4ab17dc047654d69d135464d2083dc5402",
    "huge_int_card": "de7a58d2becfe08a9ce33862876dea9d25924257c44b30cffbdddad2af4db21f",
    "star4_pruned": "db319d393227af676365e2d85187796943928b125bf46802fddb1ab4a8b2bfb7",
    "cycle4_cross": "abf17645f89a90e70036b1335019f0c67e2edc3b4ed7a6b64dd5debb45b5ed80",
}


def _pinned_corpus():
    g3 = QueryGraph(3, [(0, 1), (1, 2)])
    g4 = QueryGraph(4, [(0, 1), (0, 2), (0, 3)])
    gc = QueryGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])

    def catalog(graph, cards, sels):
        return Catalog(
            graph, [Relation(f"R{i}", c) for i, c in enumerate(cards)], sels
        )

    yield "chain3", catalog(
        g3, [100.0, 2000.0, 50.0], {(0, 1): 0.1, (1, 2): 0.05}
    ), {}
    yield "denormal_sel", catalog(
        g3, [100.0, 2000.0, 50.0], {(0, 1): 5e-324, (1, 2): 0.05}
    ), {}
    yield "huge_int_card", catalog(
        g3, [10**400, 2000.0, 50.0], {(0, 1): 0.1, (1, 2): 0.05}
    ), {}
    yield "star4_pruned", catalog(
        g4, [1000.0, 10.0, 20.0, 30.0],
        {(0, 1): 0.1, (0, 2): 0.2, (0, 3): 0.3},
    ), {"cost_model": CoutCostModel(), "enable_pruning": True}
    yield "cycle4_cross", catalog(
        gc, [5.0, 6.0, 7.0, 8.0],
        {(0, 1): 0.5, (1, 2): 0.25, (2, 3): 0.125, (3, 0): 0.0625},
    ), {"allow_cross_products": True}


@pytest.mark.parametrize(
    "name,catalog,kwargs",
    [pytest.param(*item, id=item[0]) for item in _pinned_corpus()],
)
def test_pinned_signature_corpus(name, catalog, kwargs):
    signature, _ = request_signature(catalog, "tdmincutbranch", **kwargs)
    assert signature == PINNED_SIGNATURES[name]


# ----------------------------------------------------------------------
# Consistent hash ring
# ----------------------------------------------------------------------


class TestConsistentHashRing:
    def test_deterministic_and_in_range(self):
        ring = ConsistentHashRing(4, replicas=32)
        again = ConsistentHashRing(4, replicas=32)
        for i in range(200):
            key = f"sig-{i}"
            owner = ring.owner(key)
            assert 0 <= owner < 4
            assert owner == again.owner(key)

    def test_all_shards_get_traffic(self):
        ring = ConsistentHashRing(4, replicas=64)
        owners = {ring.owner(f"sig-{i}") for i in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_resize_moves_a_minority_of_keys(self):
        before = ConsistentHashRing(4, replicas=64)
        after = ConsistentHashRing(5, replicas=64)
        keys = [f"sig-{i}" for i in range(1000)]
        moved = sum(1 for k in keys if before.owner(k) != after.owner(k))
        # Naive modulo hashing would move ~80%; consistent hashing ~1/5.
        assert moved < 500

    def test_validates_arguments(self):
        with pytest.raises(OptimizationError):
            ConsistentHashRing(0)
        with pytest.raises(OptimizationError):
            ConsistentHashRing(2, replicas=0)

    def test_single_shard_owns_everything(self):
        ring = ConsistentHashRing(1)
        assert {ring.owner(f"s{i}") for i in range(50)} == {0}


# ----------------------------------------------------------------------
# Token buckets / tenant quotas
# ----------------------------------------------------------------------


class TestQuotas:
    def test_bucket_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=lambda: now[0])
        assert all(bucket.try_acquire() for _ in range(3))
        assert not bucket.try_acquire()
        assert bucket.retry_after_seconds() == pytest.approx(0.5)
        now[0] += 1.0  # refills 2 tokens
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_zero_rate_never_refills(self):
        now = [0.0]
        bucket = TokenBucket(rate=0.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_acquire() and bucket.try_acquire()
        now[0] += 1e6
        assert not bucket.try_acquire()
        assert bucket.retry_after_seconds() > 0

    def test_quotas_disabled_when_rate_is_none(self):
        quotas = TenantQuotas(None)
        assert all(quotas.try_acquire("t") for _ in range(1000))
        assert quotas.rejections == 0

    def test_tenants_are_isolated(self):
        now = [0.0]
        quotas = TenantQuotas(rate=0.0, burst=2.0, clock=lambda: now[0])
        assert quotas.try_acquire("a") and quotas.try_acquire("a")
        assert not quotas.try_acquire("a")
        assert quotas.try_acquire("b")  # unaffected by a's exhaustion
        assert quotas.rejections == 1

    def test_tenant_registry_is_bounded(self):
        quotas = TenantQuotas(rate=1.0, burst=1.0, max_tenants=10)
        for i in range(50):
            quotas.try_acquire(f"tenant-{i}")
        assert len(quotas._buckets) == 10

"""Shared fixtures for the pytest-benchmark suites.

Each bench file regenerates one table/figure of the paper at a pinned,
CI-friendly size; the full parameter sweeps live in
``repro.bench.experiments`` (``python -m repro.bench.report --all``) and
``benchmarks/run_all.py``.
"""

from __future__ import annotations

import pytest

from repro.catalog.workload import WorkloadGenerator


@pytest.fixture(scope="session")
def workload():
    """One deterministic workload generator for the whole bench session."""
    return WorkloadGenerator(seed=20110411)  # ICDE 2011 week


def make_instances(seed: int = 20110411):
    """Standalone generator for module-level parametrization."""
    return WorkloadGenerator(seed=seed)

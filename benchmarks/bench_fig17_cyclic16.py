"""Figure 17: random cyclic queries with 16 vertices, time vs edge count.

Edge counts stay moderate: Python pays a constant interpreter factor and
dense 16-vertex graphs have clique-like ccp counts (the paper capped all
inputs at 100 s per plan generator on its C++ testbed for the same
reason).
"""

import pytest

from repro.optimizer.api import make_optimizer

from .conftest import make_instances

EDGE_COUNTS = [18, 22]
ALGORITHMS = ["tdmincutbranch", "tdmincutlazy"]

_GEN = make_instances(seed=17)
_INSTANCES = {m: _GEN.random_cyclic(16, m) for m in EDGE_COUNTS}


@pytest.mark.benchmark(group="fig17-cyclic16")
@pytest.mark.parametrize("edges", EDGE_COUNTS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_plan_generation_cyclic16(benchmark, algorithm, edges):
    instance = _INSTANCES[edges]

    def run():
        return make_optimizer(algorithm, instance.catalog).optimize()

    plan = benchmark(run)
    assert plan.n_joins() == 15

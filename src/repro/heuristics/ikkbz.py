"""IKKBZ: polynomial-time optimal left-deep ordering for acyclic queries.

The classic algorithm of Ibaraki & Kameda and Krishnamurthy, Boral &
Zaniolo: for tree-shaped query graphs and cost functions with the
*adjacent sequence interchange* (ASI) property — C_out has it — the
optimal left-deep, cross-product-free join order can be found in
O(n^2 log n) by sorting precedence-tree *modules* by rank.

For each candidate starting relation the query tree is rooted there,
every subtree is flattened into a rank-ascending chain (merging modules
whose ranks would otherwise violate the precedence order), and the best
root wins.  Ranks use the standard recurrences::

    T(module) = prod(s_v * n_v)          (root contributes n_root, C=0)
    C(AB)     = C(A) + T(A) * C(B)
    rank(m)   = (T(m) - 1) / C(m)

The result provably equals the exponential left-deep DP
(:func:`repro.heuristics.leftdeep.optimal_left_deep`) on acyclic
graphs — a property the test suite checks on random trees.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro import bitset
from repro.catalog.statistics import Catalog
from repro.errors import DisconnectedGraphError, OptimizationError
from repro.plan.jointree import JoinTree

__all__ = ["IKKBZ", "ikkbz_optimal_left_deep"]


class _Module:
    """A merged run of relations with aggregated T/C and fixed order."""

    __slots__ = ("vertices", "t_value", "c_value")

    def __init__(self, vertices: List[int], t_value: float, c_value: float):
        self.vertices = vertices
        self.t_value = t_value
        self.c_value = c_value

    @property
    def rank(self) -> float:
        if self.c_value == 0:
            return -math.inf
        return (self.t_value - 1.0) / self.c_value

    def merged_with(self, other: "_Module") -> "_Module":
        return _Module(
            self.vertices + other.vertices,
            self.t_value * other.t_value,
            self.c_value + self.t_value * other.c_value,
        )


class IKKBZ:
    """Optimal left-deep join ordering for acyclic query graphs."""

    name = "ikkbz"

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.graph = catalog.graph
        if not self.graph.is_connected(self.graph.all_vertices):
            raise DisconnectedGraphError("query graph is disconnected")
        if not self.graph.is_acyclic():
            raise OptimizationError(
                "IKKBZ requires an acyclic (tree-shaped) query graph"
            )

    # ------------------------------------------------------------------

    def best_sequence(self) -> Tuple[List[int], float]:
        """Return (relation order, C_out cost), minimized over all roots."""
        best_order: List[int] = []
        best_cost = math.inf
        for root in range(self.graph.n_vertices):
            order, cost = self._solve_for_root(root)
            if cost < best_cost:
                best_cost = cost
                best_order = order
        return best_order, best_cost

    def optimize(self) -> JoinTree:
        """Return the optimal left-deep plan as a :class:`JoinTree`."""
        order, _ = self.best_sequence()
        return _sequence_to_plan(self.catalog, order)

    # ------------------------------------------------------------------

    def _solve_for_root(self, root: int) -> Tuple[List[int], float]:
        graph = self.graph
        n = graph.n_vertices
        if n == 1:
            return [0], 0.0
        parent = [-1] * n
        children: List[List[int]] = [[] for _ in range(n)]
        order = [root]
        seen = 1 << root
        frontier = [root]
        while frontier:
            v = frontier.pop()
            for w in bitset.iter_indices(
                graph.neighbors_of_vertex(v) & ~seen
            ):
                seen |= 1 << w
                parent[w] = v
                children[v].append(w)
                order.append(w)
                frontier.append(w)

        def leaf_module(v: int) -> _Module:
            selectivity = self.catalog.selectivity(parent[v], v)
            t_value = selectivity * self.catalog.cardinality(v)
            return _Module([v], t_value, t_value)

        def chainify(v: int) -> List[_Module]:
            """Flatten the subtree at v into a rank-ascending module chain."""
            merged_children: List[_Module] = self._merge_by_rank(
                [chainify(c) for c in children[v]]
            )
            chain = [leaf_module(v)] + merged_children
            # The tail is rank-ascending; only the head can violate the
            # precedence order.  Merge forward until it no longer does.
            while len(chain) > 1 and chain[0].rank > chain[1].rank:
                chain[0] = chain[0].merged_with(chain[1])
                del chain[1]
            return chain

        tail = self._merge_by_rank([chainify(c) for c in children[root]])
        root_module = _Module([root], self.catalog.cardinality(root), 0.0)
        sequence = root_module
        for module in tail:
            sequence = sequence.merged_with(module)
        return sequence.vertices, sequence.c_value

    @staticmethod
    def _merge_by_rank(chains: List[List[_Module]]) -> List[_Module]:
        """Merge rank-ascending chains into one rank-ascending chain."""
        modules = [module for chain in chains for module in chain]
        # Precedence within each chain is preserved because Python's sort
        # is stable and each input chain is already rank-ascending.
        modules.sort(key=lambda m: m.rank)
        return modules


def _sequence_to_plan(catalog: Catalog, order: List[int]) -> JoinTree:
    """Materialize a relation order as a left-deep JoinTree with C_out costs."""

    def leaf(v: int) -> JoinTree:
        return JoinTree(
            vertex_set=1 << v,
            cardinality=catalog.cardinality(v),
            cost=0.0,
            relation=catalog.relations[v].name,
        )

    tree = leaf(order[0])
    for v in order[1:]:
        right = leaf(v)
        card = (
            tree.cardinality
            * right.cardinality
            * catalog.selectivity_between(tree.vertex_set, 1 << v)
        )
        tree = JoinTree(
            vertex_set=tree.vertex_set | right.vertex_set,
            cardinality=card,
            cost=tree.cost + card,
            left=tree,
            right=right,
            implementation="join",
        )
    return tree


def ikkbz_optimal_left_deep(catalog: Catalog) -> JoinTree:
    """Convenience wrapper: IKKBZ plan for an acyclic catalog."""
    return IKKBZ(catalog).optimize()

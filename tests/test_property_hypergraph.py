"""Property-based tests (hypothesis) for the hypergraph extension."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DPhyp, Hypergraph, TopDownHypBasic, bitset
from repro.catalog.hyper import attach_random_hyper_statistics
from repro.serialize import hypergraph_from_dict, hypergraph_to_dict


@st.composite
def hypergraphs(draw, min_vertices=2, max_vertices=6):
    """Random connected hypergraph: spanning tree + random hyperedges."""
    n = draw(st.integers(min_vertices, max_vertices))
    edges = []
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        edges.append((1 << parent, 1 << v))
    n_complex = draw(st.integers(0, 3))
    for _ in range(n_complex):
        u = draw(st.integers(1, (1 << n) - 1))
        v = draw(st.integers(1, (1 << n) - 1)) & ~u
        if v:
            edges.append((u, v))
    return Hypergraph(n, edges)


class TestHypergraphProperties:
    @settings(max_examples=60, deadline=None)
    @given(hypergraphs())
    def test_connectivity_monotone_under_edges(self, hypergraph):
        # Adding edges can only make more sets connected.
        richer = Hypergraph(
            hypergraph.n_vertices,
            list(hypergraph.edges) + [(1 << 0, 1 << (hypergraph.n_vertices - 1))],
        )
        for s in range(1, hypergraph.all_vertices + 1):
            if hypergraph.is_connected(s):
                assert richer.is_connected(s)

    @settings(max_examples=60, deadline=None)
    @given(hypergraphs())
    def test_neighborhood_disjoint_from_set_and_excluded(self, hypergraph):
        universe = hypergraph.all_vertices
        for s in (1, universe >> 1 or 1, universe):
            s &= universe
            if s == 0:
                continue
            excluded = (universe ^ s) >> 1
            neighbors = hypergraph.neighborhood(s, excluded)
            assert neighbors & s == 0
            assert neighbors & excluded == 0

    @settings(max_examples=60, deadline=None)
    @given(hypergraphs())
    def test_cross_edge_symmetric(self, hypergraph):
        universe = hypergraph.all_vertices
        left = universe & 0b10101
        right = universe & ~left
        if left and right:
            assert hypergraph.has_cross_edge(left, right) == \
                hypergraph.has_cross_edge(right, left)

    @settings(max_examples=40, deadline=None)
    @given(hypergraphs())
    def test_serialization_round_trip(self, hypergraph):
        restored = hypergraph_from_dict(hypergraph_to_dict(hypergraph))
        assert restored.edges == hypergraph.edges
        assert restored.n_vertices == hypergraph.n_vertices

    @settings(max_examples=25, deadline=None)
    @given(hypergraphs(max_vertices=5), st.integers(0, 2 ** 31))
    def test_dphyp_matches_topdown(self, hypergraph, seed):
        if not hypergraph.is_connected(hypergraph.all_vertices):
            return
        catalog = attach_random_hyper_statistics(hypergraph, seed=seed)
        a = DPhyp(catalog).optimize()
        b = TopDownHypBasic(catalog).optimize()
        assert math.isclose(a.cost, b.cost, rel_tol=1e-9)
        a.validate()
        b.validate()

#!/usr/bin/env python
"""Smoke benchmark: tracing must be (nearly) free on the hot path.

Runs the same warm-cache batch through two identical services — one with
tracing enabled, one with it disabled — and compares accumulated wall
time.  The warm-cache path is the worst case for observability overhead:
the work per request is canonical labeling, a cache lookup, and a plan
rebind, so every extra ``perf_counter`` call and allocation shows up.
The default workload is paper-scale clique queries (the costliest
topology to canonicalize and rebind), which is what a production warm
path actually serves.  Doubles as the acceptance gate for the tracing
layer: enabled tracing must cost **less than 5% extra** on that path,
every request must still produce a retained trace, and the trace store
must respect its bound.

Methodology: the services are timed one *single pass* at a time, in
alternating order (`off,on,on,off,off,on,...`), and each service's
**best pass** is compared.  Scheduler preemption and noisy neighbours
only ever *add* time, so the per-pass minimum converges on the true
cost for both services, while alternation keeps slow machine-wide
drift from landing on just one of them.  Summing or averaging instead
lets a single multi-millisecond stall swing the verdict.

Run:  python benchmarks/bench_observability.py [--count 32] [--repeat 60]

Exit status is non-zero if any gate fails, so `make verify` can gate
on it.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.catalog.workload import WorkloadGenerator
from repro.optimizer.api import OptimizationRequest
from repro.service import OptimizerService

#: Acceptance: warm-path overhead of tracing, accumulated over the run.
OVERHEAD_CEILING = 0.05


def build_requests(count: int, n: int, topology: str = "clique"):
    generator = WorkloadGenerator(seed=20110411)
    return [
        OptimizationRequest(query=instance, tag=f"q{i}")
        for i, instance in enumerate(
            generator.series(topology, [n], per_size=count)
        )
    ]


def measure_pair(traced, untraced, requests, passes: int):
    """Best single-pass wall time per service, over alternating passes."""
    for service in (untraced, traced):
        service.optimize_batch(requests, executor="serial")  # cold: fill cache
    best_on = best_off = float("inf")
    for index in range(passes):
        order = (untraced, traced) if index % 2 == 0 else (traced, untraced)
        for service in order:
            started = time.perf_counter()
            service.optimize_batch(requests, executor="serial")
            elapsed = time.perf_counter() - started
            if service is traced:
                best_on = min(best_on, elapsed)
            else:
                best_off = min(best_off, elapsed)
    return best_on, best_off


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=32, help="queries per batch")
    parser.add_argument("--n", type=int, default=12, help="relations per query")
    parser.add_argument(
        "--topology", default="clique", help="query graph topology"
    )
    parser.add_argument(
        "--repeat", type=int, default=60,
        help="alternating warm passes per service",
    )
    args = parser.parse_args(argv)

    requests = build_requests(args.count, args.n, args.topology)
    total_requests = args.count * args.repeat
    print(
        f"observability smoke bench ({args.topology} n={args.n}, "
        f"{args.count} queries x {args.repeat} alternating warm passes)"
    )

    failures = []

    traced = OptimizerService(
        cache_capacity=args.count * 2, trace_capacity=args.count * 2
    )
    untraced = OptimizerService(cache_capacity=args.count * 2, tracing=False)

    with_tracing, baseline = measure_pair(traced, untraced, requests, args.repeat)

    overhead = with_tracing / max(baseline, 1e-12) - 1.0
    per_request_us = (with_tracing - baseline) / args.count * 1e6
    print(f"tracing off: {baseline * 1e3:10.2f}ms best pass")
    print(
        f"tracing on:  {with_tracing * 1e3:10.2f}ms best pass "
        f"({overhead * +100:+.2f}%, {per_request_us:+.3f}us/request)"
    )

    if overhead >= OVERHEAD_CEILING:
        failures.append(
            f"tracing overhead {overhead * 100:.2f}% exceeds the "
            f"{OVERHEAD_CEILING * 100:.0f}% ceiling on the warm-cache path"
        )

    # Every traced request must have produced a trace, bounded by capacity.
    store = traced.traces
    if len(store) != store.capacity:
        failures.append(
            f"trace store holds {len(store)} traces, expected its "
            f"capacity {store.capacity} after {total_requests} requests"
        )
    last = store.last()
    if last is None or last.find("cache_lookup") is None:
        failures.append("warm-path trace is missing its cache_lookup span")
    if untraced.stats_snapshot()["totals"]["requests"] != traced.stats_snapshot()[
        "totals"
    ]["requests"]:
        failures.append("the two services did not serve identical workloads")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"ok: tracing costs {overhead * 100:.2f}% on the warm path "
            f"(ceiling {OVERHEAD_CEILING * 100:.0f}%)"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Unit tests for the bitset helpers."""

import pytest

from repro import bitset


class TestConstruction:
    def test_bit(self):
        assert bitset.bit(0) == 1
        assert bitset.bit(5) == 32

    def test_set_of(self):
        assert bitset.set_of() == 0
        assert bitset.set_of(0, 2, 4) == 0b10101

    def test_from_indices_roundtrip(self):
        indices = [0, 3, 7, 12]
        assert bitset.to_indices(bitset.from_indices(indices)) == indices

    def test_empty_constant(self):
        assert bitset.EMPTY == 0


class TestPredicates:
    def test_is_subset(self):
        assert bitset.is_subset(0b101, 0b111)
        assert bitset.is_subset(0, 0b111)
        assert bitset.is_subset(0b111, 0b111)
        assert not bitset.is_subset(0b1000, 0b111)

    def test_is_proper_subset(self):
        assert bitset.is_proper_subset(0b101, 0b111)
        assert not bitset.is_proper_subset(0b111, 0b111)
        assert not bitset.is_proper_subset(0b1000, 0b111)

    def test_intersects(self):
        assert bitset.intersects(0b110, 0b011)
        assert not bitset.intersects(0b100, 0b011)
        assert not bitset.intersects(0, 0b011)


class TestExtremes:
    def test_lowest_bit(self):
        assert bitset.lowest_bit(0b1100) == 0b100
        assert bitset.lowest_bit(1) == 1

    def test_lowest_bit_empty_raises(self):
        with pytest.raises(ValueError):
            bitset.lowest_bit(0)

    def test_lowest_index(self):
        assert bitset.lowest_index(0b1100) == 2

    def test_lowest_index_empty_raises(self):
        with pytest.raises(ValueError):
            bitset.lowest_index(0)

    def test_highest_index(self):
        assert bitset.highest_index(0b1100) == 3
        assert bitset.highest_index(1) == 0

    def test_highest_index_empty_raises(self):
        with pytest.raises(ValueError):
            bitset.highest_index(0)


class TestIteration:
    def test_popcount(self):
        assert bitset.popcount(0) == 0
        assert bitset.popcount(0b1011) == 3
        assert bitset.popcount((1 << 64) - 1) == 64

    def test_iter_bits_ascending(self):
        assert list(bitset.iter_bits(0b10110)) == [0b10, 0b100, 0b10000]

    def test_iter_indices(self):
        assert list(bitset.iter_indices(0b10110)) == [1, 2, 4]
        assert list(bitset.iter_indices(0)) == []

    def test_iter_subsets_counts(self):
        subsets = list(bitset.iter_subsets(0b1011))
        assert len(subsets) == 8
        assert subsets[0] == 0
        assert subsets[-1] == 0b1011
        # Vance & Maier walk is ascending.
        assert subsets == sorted(subsets)

    def test_iter_subsets_of_empty(self):
        assert list(bitset.iter_subsets(0)) == [0]

    def test_iter_nonempty_subsets(self):
        subsets = list(bitset.iter_nonempty_subsets(0b101))
        assert subsets == [0b001, 0b100, 0b101]

    def test_iter_nonempty_subsets_empty_input(self):
        assert list(bitset.iter_nonempty_subsets(0)) == []

    def test_iter_proper_nonempty_subsets(self):
        subsets = list(bitset.iter_proper_nonempty_subsets(0b111))
        assert len(subsets) == 2 ** 3 - 2
        assert 0 not in subsets
        assert 0b111 not in subsets

    def test_all_subsets_are_submasks(self):
        mask = 0b110101
        for subset in bitset.iter_subsets(mask):
            assert subset & ~mask == 0


class TestMisc:
    def test_set_below(self):
        assert bitset.set_below(0) == 0b1
        assert bitset.set_below(3) == 0b1111

    def test_format_set(self):
        assert bitset.format_set(0b101) == "{R0, R2}"
        assert bitset.format_set(0) == "{}"
        assert bitset.format_set(0b10, prefix="T") == "{T1}"

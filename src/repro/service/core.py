"""The long-lived optimizer service: cached, batched, observable.

:class:`OptimizerService` is the serving-layer counterpart of
:func:`repro.optimizer.api.optimize_request`.  It keeps a bounded LRU of
optimized plans keyed by :func:`request_signature` — a canonical digest
of everything that determines the answer:

* the query graph's **canonical form** (degree-refinement labeling from
  :mod:`repro.graph.canonical`), so isomorphic relabelings share a key;
* the **statistics rounded** to a configurable number of significant
  digits, serialized in canonical vertex order — near-identical
  workloads share plans, materially different ones do not;
* the **cost model** class *and its parameters* (via
  :meth:`~repro.cost.base.CostModel.signature_fields`), the **algorithm**
  (with ``"auto"`` resolved first), the **pruning flag**, and the
  **cross-product flag**.

Cached plans are stored in canonical vertex space and rebound to each
requesting query's numbering and relation names on a hit, so a hit costs
one canonical labeling plus a tree copy — orders of magnitude below
enumeration for anything non-trivial.

Batches run on one of three executors — ``"serial"``, ``"thread"``, or
``"process"`` — with optional per-item ``deadline_seconds`` and an
optional greedy-heuristic fallback plan for items that blow the budget.
The process executor (:mod:`repro.service.executor`) is the one that
actually uses multiple cores and the only one that can reclaim a hung
worker; the cache always lives in the parent, so hit behaviour is
identical across executors.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeoutError
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro import bitset
from repro.catalog.statistics import Catalog
from repro.catalog.workload import QueryInstance
from repro.cost.base import CostModel
from repro.errors import DeadlineExceededError, OptimizationError, ReproError
from repro.graph.canonical import canonical_form, signature_of_form
from repro.graph.query_graph import QueryGraph
from repro.optimizer.api import (
    OptimizationRequest,
    OptimizationResult,
    choose_algorithm,
    optimize_request,
)
from repro.plan.jointree import JoinTree
from repro.service.cache import CacheEntry, PlanCache
from repro.service.executor import EXECUTORS, ProcessPoolExecutor
from repro.service.metrics import ServiceMetrics

__all__ = ["OptimizerService", "request_signature"]

#: Accepted ``fallback=`` values for ``optimize_batch``.
_FALLBACKS = (None, "goo")


def _round_significant(value: float, digits: int) -> float:
    """Round a finite value to ``digits`` significant figures (0 stays 0)."""
    if value == 0:
        return 0.0
    magnitude = math.floor(math.log10(abs(value)))
    return round(value, digits - 1 - magnitude)


def request_signature(
    catalog: Catalog,
    algorithm: str,
    cost_model: Optional[CostModel] = None,
    enable_pruning: bool = False,
    round_digits: int = 4,
    allow_cross_products: bool = False,
) -> Tuple[str, Tuple[int, ...]]:
    """Return ``(signature, order)`` for a fully resolved request.

    ``signature`` is a hex digest over the canonical graph form, the
    rounded statistics in canonical order, the cost model class *and its
    parameters* (:meth:`~repro.cost.base.CostModel.signature_fields`),
    the algorithm name, the pruning flag, and the cross-product flag.
    ``order`` is the canonical vertex order used (``order[p]`` = this
    catalog's vertex at canonical position ``p``), which the service
    needs to rebind cached plans.

    Rounded base cardinalities seed the labeling as vertex colors, so
    statistics both sharpen the canonical form (less symmetry to branch
    over) and participate in key identity.

    Statistics are validated here: a non-finite cardinality or
    selectivity raises :class:`~repro.errors.OptimizationError` naming
    the offending relation(s) instead of surfacing as a bare
    ``OverflowError``/``ValueError`` from the rounding math.
    """
    graph = catalog.graph
    n = graph.n_vertices
    for vertex in range(n):
        cardinality = catalog.cardinality(vertex)
        if not math.isfinite(cardinality):
            raise OptimizationError(
                f"non-finite cardinality {cardinality!r} for relation "
                f"{catalog.relations[vertex].name!r}; fix the catalog "
                "statistics before optimizing"
            )
    for (u, v) in graph.edges:
        selectivity = catalog.selectivity(u, v)
        if not math.isfinite(selectivity):
            raise OptimizationError(
                f"non-finite selectivity {selectivity!r} on the edge "
                f"between relations {catalog.relations[u].name!r} and "
                f"{catalog.relations[v].name!r}; fix the catalog "
                "statistics before optimizing"
            )
    cards = [
        _round_significant(catalog.cardinality(v), round_digits) for v in range(n)
    ]
    ranking = {c: i for i, c in enumerate(sorted(set(cards)))}
    order, edges = canonical_form(graph, initial_colors=[ranking[c] for c in cards])
    position = [0] * n
    for pos, vertex in enumerate(order):
        position[vertex] = pos
    canonical_sels = sorted(
        (
            min(position[u], position[v]),
            max(position[u], position[v]),
            _round_significant(catalog.selectivity(u, v), round_digits),
        )
        for (u, v) in graph.edges
    )
    payload = {
        "shape": signature_of_form(n, edges),
        "cards": [cards[order[p]] for p in range(n)],
        "sels": canonical_sels,
        "cost_model": type(cost_model).__name__ if cost_model else "default",
        "cost_model_params": (
            cost_model.signature_fields() if cost_model else {}
        ),
        "algorithm": algorithm,
        "pruning": bool(enable_pruning),
        "cross_products": bool(allow_cross_products),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest(), order


def _rebind_plan(
    node: JoinTree,
    vertex_of_position: Sequence[int],
    catalog: Optional[Catalog],
) -> JoinTree:
    """Map a plan between vertex spaces through ``vertex_of_position``.

    With a ``catalog``, leaf relation names are taken from it (canonical →
    query space); with ``None`` leaves get ``C<position>`` placeholders
    (query → canonical space, for storage).
    """
    mapped_set = 0
    for pos in bitset.iter_indices(node.vertex_set):
        mapped_set |= 1 << vertex_of_position[pos]
    if node.is_leaf:
        vertex = mapped_set.bit_length() - 1
        name = catalog.relations[vertex].name if catalog else f"C{vertex}"
        return JoinTree(
            vertex_set=mapped_set,
            cardinality=node.cardinality,
            cost=node.cost,
            relation=name,
        )
    return JoinTree(
        vertex_set=mapped_set,
        cardinality=node.cardinality,
        cost=node.cost,
        left=_rebind_plan(node.left, vertex_of_position, catalog),
        right=_rebind_plan(node.right, vertex_of_position, catalog),
        implementation=node.implementation,
    )


@dataclass
class _PreparedJob:
    """One batch item after parent-side resolution and cache lookup.

    ``hit`` is the ready cache-hit result (``run_request`` then never
    runs); otherwise ``run_request`` is the fully resolved request —
    catalog materialized, ``"auto"`` resolved, cost model injected — that
    an executor backend should feed to
    :func:`~repro.optimizer.api.optimize_request`.
    """

    request: OptimizationRequest
    run_request: OptimizationRequest
    catalog: Catalog
    effective: str
    signature: str
    order: Tuple[int, ...]
    hit: Optional[OptimizationResult] = None


class OptimizerService:
    """Long-lived optimization endpoint with caching and observability.

    Parameters
    ----------
    cache_capacity:
        Maximum number of cached plans (LRU beyond that).
    default_algorithm:
        Registry name (or ``"auto"``) used when a raw query — rather than
        an :class:`OptimizationRequest` — is submitted.
    default_cost_model:
        Cost model injected into requests that carry none.
    round_digits:
        Significant digits statistics are rounded to for cache keying;
        lower values trade plan-quality fidelity for a higher hit rate.
    default_executor:
        Batch backend when ``optimize_batch`` is not told otherwise:
        ``"thread"`` (default), ``"process"``, or ``"serial"``.
    default_deadline_seconds:
        Per-item wall-clock budget applied to batches that do not pass
        their own ``deadline_seconds`` (``None`` = no deadline).
    process_start_method:
        ``multiprocessing`` start method for the process executor
        (``None`` = platform default; ``fork`` on Linux keeps plugin
        algorithms registered in the parent visible to workers).

    The service is thread-safe: ``optimize`` may be called concurrently,
    and ``optimize_batch`` runs items on a worker pool with per-item
    error isolation (a failing query yields a result with ``error`` set
    instead of poisoning the batch).
    """

    def __init__(
        self,
        cache_capacity: int = 512,
        default_algorithm: str = "auto",
        default_cost_model: Optional[CostModel] = None,
        round_digits: int = 4,
        default_executor: str = "thread",
        default_deadline_seconds: Optional[float] = None,
        process_start_method: Optional[str] = None,
    ):
        if default_executor not in EXECUTORS:
            raise OptimizationError(
                f"unknown executor {default_executor!r}; "
                f"choose from {sorted(EXECUTORS)}"
            )
        self.cache = PlanCache(cache_capacity)
        self.metrics = ServiceMetrics()
        self.default_algorithm = default_algorithm
        self.default_cost_model = default_cost_model
        self.round_digits = round_digits
        self.default_executor = default_executor
        self.default_deadline_seconds = default_deadline_seconds
        self.process_start_method = process_start_method

    # ------------------------------------------------------------------

    def _as_request(
        self,
        query: Union[OptimizationRequest, Catalog, QueryInstance, QueryGraph],
        **overrides,
    ) -> OptimizationRequest:
        if isinstance(query, OptimizationRequest):
            return replace(query, **overrides) if overrides else query
        overrides.setdefault("algorithm", self.default_algorithm)
        return OptimizationRequest(query=query, **overrides)

    def _effective_label(self, request: OptimizationRequest) -> str:
        """Resolve the metrics label for a request, ``"auto"`` included.

        Successes are recorded under the effective algorithm, so errors
        must be too — otherwise per-algorithm error rates are skewed by
        a phantom ``"auto"`` bucket.  Resolution itself is best-effort:
        if the query is too broken to resolve, the raw name is used.
        """
        if request.algorithm != "auto":
            return request.algorithm
        try:
            return choose_algorithm(
                request.resolved_catalog(), enable_pruning=request.enable_pruning
            )
        except Exception:
            return request.algorithm

    def optimize(
        self,
        query: Union[OptimizationRequest, Catalog, QueryInstance, QueryGraph],
        **overrides,
    ) -> OptimizationResult:
        """Optimize one query, consulting and feeding the plan cache.

        ``query`` may be a ready :class:`OptimizationRequest` (keyword
        overrides are applied on top) or any raw query object the request
        accepts.  Raises the library's usual typed errors on failure; use
        :meth:`optimize_batch` for isolated per-item errors.
        """
        request = self._as_request(query, **overrides)
        started = time.perf_counter()
        try:
            result, effective = self._execute(request)
        except ReproError:
            self.metrics.observe(
                self._effective_label(request),
                time.perf_counter() - started,
                error=True,
            )
            raise
        self.metrics.observe(
            effective, time.perf_counter() - started, cache_hit=result.cache_hit
        )
        return result

    def _prepare(self, request: OptimizationRequest) -> _PreparedJob:
        """Resolve a request and consult the cache (parent-side, cheap).

        Returns a :class:`_PreparedJob`; on a cache hit ``job.hit`` is
        the ready result and nothing needs to be executed.
        """
        started = time.perf_counter()
        catalog = request.resolved_catalog()
        cost_model = (
            request.cost_model
            if request.cost_model is not None
            else self.default_cost_model
        )
        effective = request.algorithm
        if effective == "auto":
            effective = choose_algorithm(
                catalog, enable_pruning=request.enable_pruning
            )
        signature, order = request_signature(
            catalog,
            effective,
            cost_model,
            request.enable_pruning,
            self.round_digits,
            allow_cross_products=request.allow_cross_products,
        )
        run_request = replace(
            request, query=catalog, cost_model=cost_model, algorithm=effective
        )
        job = _PreparedJob(
            request=request,
            run_request=run_request,
            catalog=catalog,
            effective=effective,
            signature=signature,
            order=tuple(order),
        )
        entry = self.cache.get(signature)
        if entry is not None:
            plan = _rebind_plan(entry.plan, order, catalog)
            job.hit = OptimizationResult(
                plan=plan,
                algorithm=request.algorithm,
                elapsed_seconds=time.perf_counter() - started,
                memo_entries=entry.memo_entries,
                cost_evaluations=entry.cost_evaluations,
                cardinality_estimations=entry.cardinality_estimations,
                details=dict(entry.details),
                cache_hit=True,
                signature=signature,
                tag=request.tag,
            )
        return job

    def _store(self, job: _PreparedJob, result: OptimizationResult) -> None:
        """Cache a fresh result and stamp its service-layer fields."""
        position = [0] * job.catalog.graph.n_vertices
        for pos, vertex in enumerate(job.order):
            position[vertex] = pos
        self.cache.put(
            CacheEntry(
                signature=job.signature,
                plan=_rebind_plan(result.plan, position, None),
                algorithm=job.effective,
                memo_entries=result.memo_entries,
                cost_evaluations=result.cost_evaluations,
                cardinality_estimations=result.cardinality_estimations,
                details=dict(result.details),
            )
        )
        result.algorithm = job.request.algorithm
        result.signature = job.signature
        result.tag = job.request.tag

    def _execute(
        self, request: OptimizationRequest
    ) -> Tuple[OptimizationResult, str]:
        job = self._prepare(request)
        if job.hit is not None:
            return job.hit, job.effective
        result = optimize_request(job.run_request)
        self._store(job, result)
        return result, job.effective

    # ------------------------------------------------------------------

    def optimize_batch(
        self,
        queries: Iterable[
            Union[OptimizationRequest, Catalog, QueryInstance, QueryGraph]
        ],
        workers: int = 4,
        executor: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
        fallback: Optional[str] = None,
    ) -> List[OptimizationResult]:
        """Optimize many queries, isolating per-item failures.

        Results come back in submission order.  An item that raises — a
        disconnected graph without ``allow_cross_products``, an unknown
        algorithm, a malformed query object of any type — produces an
        :class:`OptimizationResult` with ``plan=None`` and ``error`` set;
        the other items are unaffected.

        Parameters
        ----------
        workers:
            Pool width.  With ``executor=None``, ``workers <= 1`` runs
            serially on the calling thread (legacy behaviour).
        executor:
            ``"serial"``, ``"thread"``, or ``"process"`` (``None`` uses
            the service default).  ``"process"`` runs items in worker
            processes — the only mode where CPU-bound enumeration
            actually uses multiple cores, and the only one that can
            reclaim a hung item by recycling its worker.  It requires
            requests to be serializable (built-in cost models only).
        deadline_seconds:
            Per-item wall-clock budget (``None`` = service default).
            In process mode the deadline is enforced by terminating the
            worker; the item resolves within roughly the deadline plus
            scheduling slack, never hanging the batch.  In thread mode
            the deadline is *soft*: the result is synthesized on time
            but the abandoned computation finishes in the background
            (CPython threads cannot be killed) and may still warm the
            cache; its metrics observation is suppressed.  Serial mode
            ignores deadlines — items run to completion one by one.
        fallback:
            ``"goo"`` to serve a greedy-operator-ordering heuristic plan
            (:func:`repro.heuristics.greedy_operator_ordering`) for items
            that exceed the deadline instead of an error result.  The
            fallback plan is marked ``details={"deadline_timeout": 1,
            "fallback_goo": 1}`` and is **not** cached (it is not the
            exact optimum the cache promises).
        """
        if executor is None:
            executor = "serial" if workers <= 1 else self.default_executor
        if executor not in EXECUTORS:
            raise OptimizationError(
                f"unknown executor {executor!r}; choose from {sorted(EXECUTORS)}"
            )
        if fallback not in _FALLBACKS:
            raise OptimizationError(
                f"unknown fallback {fallback!r}; choose from "
                f"{[f for f in _FALLBACKS if f]} or None"
            )
        if deadline_seconds is None:
            deadline_seconds = self.default_deadline_seconds
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise OptimizationError(
                f"deadline_seconds must be positive, got {deadline_seconds}"
            )
        requests: List[Optional[OptimizationRequest]] = []
        slots: List[Optional[OptimizationResult]] = []
        for query in queries:
            try:
                requests.append(self._as_request(query))
                slots.append(None)
            except Exception as exc:
                # The query object itself is malformed — possibly not
                # even raising a library error (e.g. a TypeError from a
                # garbage object).  Mirror _run_isolated: synthesize the
                # error result instead of poisoning the batch.
                requests.append(None)
                slots.append(self._error_result("invalid", None, exc, 0.0))
                self.metrics.observe("invalid", 0.0, error=True)
        if executor == "serial":
            for index, request in enumerate(requests):
                if slots[index] is None:
                    slots[index] = self._run_isolated(request)
        elif executor == "thread":
            self._run_batch_threaded(
                requests, slots, workers, deadline_seconds, fallback
            )
        else:
            self._run_batch_process(
                requests, slots, workers, deadline_seconds, fallback
            )
        return slots  # type: ignore[return-value]

    # -- thread / serial backends --------------------------------------

    def _run_isolated(
        self,
        request: OptimizationRequest,
        abandoned: Optional[Set[int]] = None,
        index: Optional[int] = None,
    ) -> OptimizationResult:
        """Run one request, converting any exception into an error result.

        ``abandoned`` is the soft-deadline coordination set of the
        threaded backend: if our index appears there by the time we
        finish, the caller already synthesized a timeout result for this
        item, so the (completed) work only warms the cache and must not
        be double-counted in the metrics.
        """
        started = time.perf_counter()
        try:
            result, effective = self._execute(request)
        except Exception as exc:  # per-item isolation: never kill the batch
            elapsed = time.perf_counter() - started
            label = self._effective_label(request)
            if abandoned is None or index not in abandoned:
                self.metrics.observe(label, elapsed, error=True)
            return self._error_result(request.algorithm, request.tag, exc, elapsed)
        if abandoned is None or index not in abandoned:
            self.metrics.observe(
                effective, time.perf_counter() - started, cache_hit=result.cache_hit
            )
        return result

    def _run_batch_threaded(
        self,
        requests: List[Optional[OptimizationRequest]],
        slots: List[Optional[OptimizationResult]],
        workers: int,
        deadline_seconds: Optional[float],
        fallback: Optional[str],
    ) -> None:
        abandoned: Set[int] = set()
        pool = ThreadPoolExecutor(max_workers=max(1, workers))
        try:
            futures = {
                index: pool.submit(
                    self._run_isolated, requests[index], abandoned, index
                )
                for index in range(len(requests))
                if slots[index] is None
            }
            for index, future in futures.items():
                try:
                    slots[index] = future.result(timeout=deadline_seconds)
                except _FutureTimeoutError:
                    abandoned.add(index)
                    slots[index] = self._deadline_result(
                        requests[index],
                        deadline_seconds,
                        fallback,
                        elapsed=deadline_seconds,
                    )
        finally:
            # Do NOT wait: a straggler past its deadline keeps running
            # (threads cannot be killed) but must not block the batch.
            pool.shutdown(wait=False)

    # -- process backend -----------------------------------------------

    def _run_batch_process(
        self,
        requests: List[Optional[OptimizationRequest]],
        slots: List[Optional[OptimizationResult]],
        workers: int,
        deadline_seconds: Optional[float],
        fallback: Optional[str],
    ) -> None:
        from repro.serialize import request_to_dict, result_from_dict

        jobs: Dict[int, _PreparedJob] = {}
        documents: List[Tuple[int, Dict]] = []
        for index, request in enumerate(requests):
            if slots[index] is not None:
                continue
            started = time.perf_counter()
            try:
                job = self._prepare(request)
            except Exception as exc:
                elapsed = time.perf_counter() - started
                self.metrics.observe(
                    self._effective_label(request), elapsed, error=True
                )
                slots[index] = self._error_result(
                    request.algorithm, request.tag, exc, elapsed
                )
                continue
            if job.hit is not None:
                self.metrics.observe(
                    job.effective, job.hit.elapsed_seconds, cache_hit=True
                )
                slots[index] = job.hit
                continue
            try:
                document = request_to_dict(job.run_request)
            except Exception as exc:
                elapsed = time.perf_counter() - started
                self.metrics.observe(job.effective, elapsed, error=True)
                slots[index] = self._error_result(
                    request.algorithm, request.tag, exc, elapsed
                )
                continue
            jobs[index] = job
            documents.append((index, document))
        if not documents:
            return
        backend = ProcessPoolExecutor(
            workers=max(1, workers),
            deadline_seconds=deadline_seconds,
            start_method=self.process_start_method,
        )
        outcomes = backend.run(documents)
        for index, outcome in outcomes.items():
            job = jobs[index]
            if outcome.status == "ok":
                result = result_from_dict(outcome.document)
                self._store(job, result)
                self.metrics.observe(
                    job.effective, outcome.elapsed_seconds, cache_hit=False
                )
                slots[index] = result
            elif outcome.status == "timeout":
                slots[index] = self._deadline_result(
                    job.request,
                    deadline_seconds,
                    fallback,
                    catalog=job.catalog,
                    effective=job.effective,
                    elapsed=outcome.elapsed_seconds,
                )
            else:  # "error" or "crashed"
                self.metrics.observe(
                    job.effective, outcome.elapsed_seconds, error=True
                )
                slots[index] = OptimizationResult(
                    plan=None,
                    algorithm=job.request.algorithm,
                    elapsed_seconds=outcome.elapsed_seconds,
                    memo_entries=0,
                    cost_evaluations=0,
                    cardinality_estimations=0,
                    error=outcome.error,
                    tag=job.request.tag,
                )

    # -- deadline handling ---------------------------------------------

    def _deadline_result(
        self,
        request: OptimizationRequest,
        deadline_seconds: Optional[float],
        fallback: Optional[str],
        catalog: Optional[Catalog] = None,
        effective: Optional[str] = None,
        elapsed: Optional[float] = None,
    ) -> OptimizationResult:
        """Resolve a timed-out item: heuristic fallback plan or error."""
        label = effective if effective is not None else self._effective_label(request)
        elapsed = elapsed if elapsed is not None else (deadline_seconds or 0.0)
        if fallback == "goo":
            from repro.heuristics.goo import greedy_operator_ordering

            try:
                if catalog is None:
                    catalog = request.resolved_catalog()
                plan = greedy_operator_ordering(catalog)
            except Exception:
                plan = None
            if plan is not None:
                self.metrics.observe(label, elapsed, timeout=True, fallback=True)
                return OptimizationResult(
                    plan=plan,
                    algorithm=request.algorithm,
                    elapsed_seconds=elapsed,
                    memo_entries=0,
                    cost_evaluations=0,
                    cardinality_estimations=0,
                    details={"deadline_timeout": 1, "fallback_goo": 1},
                    tag=request.tag,
                )
        self.metrics.observe(label, elapsed, error=True, timeout=True)
        exc = DeadlineExceededError(
            f"optimization exceeded the deadline of {deadline_seconds}s"
        )
        return self._error_result(request.algorithm, request.tag, exc, elapsed)

    @staticmethod
    def _error_result(algorithm, tag, exc, elapsed) -> OptimizationResult:
        return OptimizationResult(
            plan=None,
            algorithm=algorithm,
            elapsed_seconds=elapsed,
            memo_entries=0,
            cost_evaluations=0,
            cardinality_estimations=0,
            error=f"{type(exc).__name__}: {exc}",
            tag=tag,
        )

    # ------------------------------------------------------------------

    def stats_snapshot(self) -> Dict:
        """Return a JSON-ready snapshot of cache and request metrics."""
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = self.cache.stats()
        return snapshot

    def reset_stats(self) -> None:
        """Start a fresh metrics epoch (the cache contents survive)."""
        self.metrics.reset()

    def save_cache(self, path: str) -> int:
        """Persist the plan cache to a JSON file; returns entry count."""
        return self.cache.save(path)

    def load_cache(self, path: str) -> int:
        """Warm the plan cache from a JSON file; returns entries loaded."""
        return self.cache.load(path)

#!/usr/bin/env python
"""Explore the join-ordering search space (the paper's Table I story).

Shows, for each query shape, how the number of connected subgraphs
(#csg — cardinality estimations), csg-cmp-pairs (#ccp — cost function
calls) and naive generate-and-test subsets (#ngt) grow — and why a
partitioning algorithm that emits *only* valid ccps matters: on a
20-relation chain, naive partitioning enumerates ~3000x more subsets
than there are ccps.

Run:  python examples/search_space_explorer.py
"""

from repro import make_shape
from repro.analysis import formulas
from repro.enumeration.counting import (
    count_ccps,
    count_connected_subgraphs,
    count_ngt_subsets,
)

SIZES = [5, 10, 15, 20]
ENUMERATION_CAP = 10  # exhaustive cross-check below this size


def main() -> None:
    header = f"{'shape':8s} {'metric':7s}" + "".join(f"{f'n={n}':>14s}" for n in SIZES)
    print(header)
    print("-" * len(header))
    for shape in ("chain", "star", "cycle", "clique"):
        rows = {"#csg": [], "#ccp": [], "#ngt": []}
        for n in SIZES:
            row = formulas.table1_row(shape, n)
            rows["#csg"].append(row["csg"])
            rows["#ccp"].append(row["ccp"])
            rows["#ngt"].append(row["ngt"])
            if n <= ENUMERATION_CAP:
                graph = make_shape(shape, n)
                assert count_connected_subgraphs(graph) == row["csg"]
                assert count_ccps(graph) == row["ccp"]
                assert count_ngt_subsets(graph) == row["ngt"]
        for metric, values in rows.items():
            print(
                f"{shape:8s} {metric:7s}"
                + "".join(f"{v:>14,d}" for v in values)
            )
        waste = rows["#ngt"][-1] / rows["#ccp"][-1]
        print(
            f"{'':8s} -> naive generates {waste:,.0f}x more subsets than "
            f"there are ccps at n=20\n"
        )
    print(
        "The 'Fortunate Observation': #csg (cardinality estimations) is far\n"
        "below #ccp (cheap cost-function calls) — estimation happens once\n"
        "per connected subgraph, never per pair."
    )


if __name__ == "__main__":
    main()

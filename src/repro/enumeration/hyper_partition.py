"""Partitioning strategies for hypergraph top-down enumeration.

Two strategies for computing ``P_ccp_sym(S)`` under hypergraph
semantics, mirroring the plain-graph ladder (naive → conservative):

* :class:`HyperNaivePartitioning` — all ``2^|S| - 2`` subsets, each pair
  tested with the recursive hypergraph connectivity.
* :class:`HyperConservativePartitioning` — only *candidate* subsets
  reachable by growing the anchor through the DPhyp restricted
  neighborhood are generated; each candidate still needs explicit
  connectivity tests (complex hyperedges admit candidates whose far
  endpoints are internally disconnected), but the exponential subset
  scan over non-candidates is gone.

Extending branch partitioning itself to hypergraphs is the future work
the paper names; these strategies provide the correct baseline ladder
that such an algorithm would be measured against.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro import bitset
from repro.enumeration.base import PartitionStats
from repro.graph.hypergraph import Hypergraph

__all__ = ["HyperNaivePartitioning", "HyperConservativePartitioning"]


class _HyperStrategy:
    """Shared base: hypergraph + stats block."""

    name = "hyper-abstract"

    def __init__(self, hypergraph: Hypergraph):
        self.hypergraph = hypergraph
        self.stats = PartitionStats()

    def partitions(self, vertex_set: int) -> Iterator[Tuple[int, int]]:
        raise NotImplementedError


class HyperNaivePartitioning(_HyperStrategy):
    """Generate and test every subset (hypergraph MEMOIZATIONBASIC)."""

    name = "hypernaive"

    def partitions(self, vertex_set: int) -> Iterator[Tuple[int, int]]:
        if bitset.popcount(vertex_set) < 2:
            return iter(())
        self.stats.calls += 1
        emitted = []
        hypergraph = self.hypergraph
        anchor = vertex_set & -vertex_set
        rest = vertex_set ^ anchor
        for sub in bitset.iter_subsets(rest):
            left = anchor | sub
            if left == vertex_set:
                continue
            self.stats.subsets_generated += 1
            right = vertex_set ^ left
            self.stats.connectivity_tests += 2
            if not hypergraph.is_connected(left):
                continue
            if not hypergraph.is_connected(right):
                continue
            if not hypergraph.has_cross_edge(left, right):
                continue
            emitted.append((left, right))
        self.stats.emitted += len(emitted)
        return iter(emitted)


class HyperConservativePartitioning(_HyperStrategy):
    """Grow anchored candidates through DPhyp neighborhoods, then test.

    Candidate generation follows EnumerateCsgRec over
    ``Hypergraph.neighborhood``: every *connected* subset containing the
    anchor is reachable this way (DPhyp's completeness argument), along
    with some disconnected candidates (representative vertices of far
    endpoints that never complete), which the explicit connectivity test
    filters out.
    """

    name = "hyperconservative"

    def partitions(self, vertex_set: int) -> Iterator[Tuple[int, int]]:
        if bitset.popcount(vertex_set) < 2:
            return iter(())
        self.stats.calls += 1
        emitted = []
        anchor = vertex_set & -vertex_set
        self._expand(vertex_set, anchor, anchor, emitted.append)
        self.stats.emitted += len(emitted)
        return iter(emitted)

    def _expand(self, s_set: int, c_set: int, excluded: int, emit) -> None:
        hypergraph = self.hypergraph
        stats = self.stats
        complement = s_set & ~c_set
        if complement:
            stats.connectivity_tests += 2
            if hypergraph.is_connected(c_set) and hypergraph.is_connected(
                complement
            ):
                if hypergraph.has_cross_edge(c_set, complement):
                    emit((c_set, complement))
        neighbors = (
            hypergraph.neighborhood(c_set, excluded) & s_set
        )
        if neighbors == 0:
            return
        blocked = excluded | neighbors
        for subset in bitset.iter_nonempty_subsets(neighbors):
            stats.subsets_generated += 1
            enlarged = c_set | subset
            if enlarged == s_set:
                continue
            self._expand(s_set, enlarged, blocked, emit)

"""Tests for semantic plan validation."""

import pytest

from repro import (
    CoutCostModel,
    JoinTree,
    PhysicalCostModel,
    attach_random_statistics,
    chain_graph,
    cycle_graph,
    optimize_query,
    uniform_statistics,
)
from repro.plan.validation import validate_plan

from .conftest import random_connected_graph


class TestCleanPlans:
    def test_optimizer_output_validates(self, rng):
        for _ in range(15):
            graph = random_connected_graph(rng, max_vertices=7)
            catalog = attach_random_statistics(graph, rng=rng)
            plan = optimize_query(catalog).plan
            assert validate_plan(plan, catalog, CoutCostModel()) == []

    def test_physical_plans_validate(self, rng):
        graph = cycle_graph(5)
        catalog = attach_random_statistics(graph, seed=3)
        model = PhysicalCostModel()
        plan = optimize_query(catalog, cost_model=model).plan
        assert validate_plan(plan, catalog, model) == []

    def test_deserialized_plan_validates(self):
        from repro.serialize import plan_from_dict, plan_to_dict

        catalog = attach_random_statistics(chain_graph(5), seed=1)
        plan = optimize_query(catalog).plan
        restored = plan_from_dict(plan_to_dict(plan))
        assert validate_plan(restored, catalog, CoutCostModel()) == []


def _leaf(catalog, v):
    return JoinTree(
        vertex_set=1 << v,
        cardinality=catalog.cardinality(v),
        cost=0.0,
        relation=catalog.relations[v].name,
    )


class TestViolationsDetected:
    def test_cross_product_flagged(self):
        catalog = uniform_statistics(chain_graph(3))
        # Join R0 with R2: not adjacent.
        bad = JoinTree(
            vertex_set=0b101,
            cardinality=catalog.estimate(0b101),
            cost=catalog.estimate(0b101),
            left=_leaf(catalog, 0),
            right=_leaf(catalog, 2),
        )
        kinds = {v.kind for v in validate_plan(bad, catalog)}
        assert "cross-product" in kinds
        assert "incomplete" in kinds  # does not cover R1

    def test_cross_product_allowed_when_requested(self):
        catalog = uniform_statistics(chain_graph(3))
        bad = JoinTree(
            vertex_set=0b101,
            cardinality=catalog.estimate(0b101),
            cost=catalog.estimate(0b101),
            left=_leaf(catalog, 0),
            right=_leaf(catalog, 2),
        )
        kinds = {
            v.kind
            for v in validate_plan(bad, catalog, allow_cross_products=True)
        }
        assert "cross-product" not in kinds

    def test_wrong_cardinality_flagged(self):
        catalog = uniform_statistics(chain_graph(2))
        bad = JoinTree(
            vertex_set=0b11,
            cardinality=123.0,  # wrong
            cost=123.0,
            left=_leaf(catalog, 0),
            right=_leaf(catalog, 1),
        )
        kinds = {v.kind for v in validate_plan(bad, catalog)}
        assert "cardinality" in kinds

    def test_wrong_cost_flagged_only_with_model(self):
        catalog = uniform_statistics(chain_graph(2))
        card = catalog.estimate(0b11)
        bad = JoinTree(
            vertex_set=0b11,
            cardinality=card,
            cost=card * 99,  # wrong accumulated cost
            left=_leaf(catalog, 0),
            right=_leaf(catalog, 1),
        )
        assert {v.kind for v in validate_plan(bad, catalog)} == set()
        kinds = {v.kind for v in validate_plan(bad, catalog, CoutCostModel())}
        assert kinds == {"cost"}

    def test_unknown_relation_flagged(self):
        catalog = uniform_statistics(chain_graph(2))
        ghost = JoinTree(
            vertex_set=0b10, cardinality=1.0, cost=0.0, relation="ghost"
        )
        bad = JoinTree(
            vertex_set=0b11,
            cardinality=catalog.estimate(0b11),
            cost=catalog.estimate(0b11),
            left=_leaf(catalog, 0),
            right=ghost,
        )
        kinds = {v.kind for v in validate_plan(bad, catalog)}
        assert "unknown-relation" in kinds

    def test_leaf_cardinality_mismatch_flagged(self):
        catalog = uniform_statistics(chain_graph(2), cardinality=100.0)
        wrong_leaf = JoinTree(
            vertex_set=0b01, cardinality=5.0, cost=0.0, relation="R0"
        )
        bad = JoinTree(
            vertex_set=0b11,
            cardinality=catalog.estimate(0b11),
            cost=catalog.estimate(0b11),
            left=wrong_leaf,
            right=_leaf(catalog, 1),
        )
        kinds = {v.kind for v in validate_plan(bad, catalog)}
        assert "leaf-cardinality" in kinds

    def test_violation_repr(self):
        catalog = uniform_statistics(chain_graph(2))
        bad = JoinTree(
            vertex_set=0b11,
            cardinality=1.0,
            cost=1.0,
            left=_leaf(catalog, 0),
            right=_leaf(catalog, 1),
        )
        violations = validate_plan(bad, catalog)
        assert violations
        assert "PlanViolation" in repr(violations[0])

"""Restricted plan spaces and classic join-ordering heuristics.

The paper searches the full bushy, cross-product-free space
exhaustively.  This package supplies the classic comparison points from
the join-ordering literature the paper builds on:

* :func:`optimal_left_deep` — exact DP over the *left-deep* subspace
  (Ioannidis & Kang's strategy-space comparison, the paper's ref. [1]),
* :class:`IKKBZ` — the polynomial-time optimal left-deep algorithm for
  acyclic queries under ASI cost functions,
* :func:`greedy_operator_ordering` — GOO, the standard bushy greedy
  heuristic.

They quantify what exhaustive bushy enumeration buys: the examples and
benches compare their plan quality against the optimizers' optimum.
"""

from repro.heuristics.leftdeep import optimal_left_deep
from repro.heuristics.goo import greedy_operator_ordering
from repro.heuristics.hyper_goo import greedy_hyper_ordering
from repro.heuristics.ikkbz import IKKBZ, ikkbz_optimal_left_deep

__all__ = [
    "optimal_left_deep",
    "greedy_operator_ordering",
    "greedy_hyper_ordering",
    "IKKBZ",
    "ikkbz_optimal_left_deep",
]

"""Round-trip tests for JSON serialization."""

import json
import math

import pytest

from repro import (
    Hypergraph,
    attach_random_statistics,
    chain_graph,
    optimize_query,
    random_hypergraph,
)
from repro.errors import ReproError
from repro.serialize import (
    catalog_from_dict,
    catalog_to_dict,
    cost_model_from_dict,
    cost_model_to_dict,
    graph_from_dict,
    graph_to_dict,
    hypergraph_from_dict,
    hypergraph_to_dict,
    plan_from_dict,
    plan_to_dict,
    request_from_dict,
    request_to_dict,
    result_from_dict,
    result_to_dict,
)

from .conftest import random_connected_graph


class TestGraphRoundTrip:
    def test_round_trip(self, rng):
        for _ in range(20):
            graph = random_connected_graph(rng)
            document = graph_to_dict(graph)
            json.dumps(document)  # must be plain-JSON encodable
            assert graph_from_dict(document) == graph

    def test_kind_check(self):
        with pytest.raises(ReproError):
            graph_from_dict({"kind": "catalog"})

    def test_not_a_dict(self):
        with pytest.raises(ReproError):
            graph_from_dict([1, 2, 3])


class TestCatalogRoundTrip:
    def test_round_trip(self, rng):
        for _ in range(10):
            graph = random_connected_graph(rng)
            catalog = attach_random_statistics(graph, rng=rng)
            document = json.loads(json.dumps(catalog_to_dict(catalog)))
            restored = catalog_from_dict(document)
            assert restored.graph == catalog.graph
            for v in range(graph.n_vertices):
                assert restored.cardinality(v) == catalog.cardinality(v)
            for (u, v) in graph.edges:
                assert restored.selectivity(u, v) == catalog.selectivity(u, v)

    def test_restored_catalog_optimizes_identically(self, rng):
        graph = random_connected_graph(rng)
        catalog = attach_random_statistics(graph, rng=rng)
        restored = catalog_from_dict(catalog_to_dict(catalog))
        assert math.isclose(
            optimize_query(catalog).cost,
            optimize_query(restored).cost,
            rel_tol=1e-12,
        )

    def test_corrupted_selectivity_rejected(self):
        catalog = attach_random_statistics(chain_graph(3), seed=1)
        document = catalog_to_dict(catalog)
        document["selectivities"][0]["selectivity"] = 2.0
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            catalog_from_dict(document)


class TestPlanRoundTrip:
    def test_round_trip(self, rng):
        for _ in range(10):
            graph = random_connected_graph(rng)
            catalog = attach_random_statistics(graph, rng=rng)
            plan = optimize_query(catalog).plan
            document = json.loads(json.dumps(plan_to_dict(plan)))
            restored = plan_from_dict(document)
            assert restored == plan

    def test_validation_on_load(self):
        catalog = attach_random_statistics(chain_graph(3), seed=2)
        document = plan_to_dict(optimize_query(catalog).plan)
        # Corrupt: make the two children overlap.
        document["root"]["left"] = document["root"]["right"]
        with pytest.raises(AssertionError):
            plan_from_dict(document)


class TestHypergraphRoundTrip:
    def test_round_trip(self):
        for seed in range(10):
            hypergraph = random_hypergraph(6, n_complex_edges=2, seed=seed)
            document = json.loads(json.dumps(hypergraph_to_dict(hypergraph)))
            restored = hypergraph_from_dict(document)
            assert restored.n_vertices == hypergraph.n_vertices
            assert restored.edges == hypergraph.edges

    def test_plain_graph_lift_round_trip(self):
        hypergraph = Hypergraph.from_query_graph(chain_graph(5))
        restored = hypergraph_from_dict(hypergraph_to_dict(hypergraph))
        assert restored.is_plain_graph


class TestCostModelRoundTrip:
    def test_cout_round_trip(self):
        from repro.cost.cout import CoutCostModel

        document = json.loads(json.dumps(cost_model_to_dict(CoutCostModel())))
        restored = cost_model_from_dict(document)
        assert isinstance(restored, CoutCostModel)

    def test_physical_round_trip_preserves_parameters(self):
        from repro.cost.physical import HashJoin, PhysicalCostModel

        model = PhysicalCostModel(
            implementations=[HashJoin(build_factor=7.0, probe_factor=3.0)],
            output_weight=2.5,
        )
        document = json.loads(json.dumps(cost_model_to_dict(model)))
        restored = cost_model_from_dict(document)
        assert restored.signature_fields() == model.signature_fields()
        assert restored.join_cost(10.0, 20.0, 5.0) == model.join_cost(
            10.0, 20.0, 5.0
        )

    def test_custom_cost_model_rejected(self):
        from repro.cost.cout import CoutCostModel

        class Custom(CoutCostModel):
            pass

        with pytest.raises(ReproError):
            cost_model_to_dict(Custom())
        with pytest.raises(ReproError):
            cost_model_from_dict(
                {"kind": "cost_model", "class": "Custom", "params": {}}
            )


class TestRequestResultRoundTrip:
    def test_request_round_trip_catalog_query(self):
        from repro.cost.physical import PhysicalCostModel
        from repro.optimizer.api import OptimizationRequest, optimize_request

        catalog = attach_random_statistics(chain_graph(6), seed=3)
        request = OptimizationRequest(
            query=catalog,
            algorithm="dpccp",
            cost_model=PhysicalCostModel(output_weight=2.0),
            tag="rt",
        )
        document = json.loads(json.dumps(request_to_dict(request)))
        restored = request_from_dict(document)
        assert restored.algorithm == "dpccp" and restored.tag == "rt"
        original = optimize_request(request)
        replayed = optimize_request(restored)
        assert math.isclose(replayed.plan.cost, original.plan.cost, rel_tol=1e-9)

    def test_request_round_trip_query_instance(self):
        from repro.catalog.workload import QueryInstance, WorkloadGenerator
        from repro.optimizer.api import OptimizationRequest

        instance = WorkloadGenerator(seed=2).fixed_shape("star", 5)
        request = OptimizationRequest(query=instance, enable_pruning=True)
        restored = request_from_dict(
            json.loads(json.dumps(request_to_dict(request)))
        )
        assert isinstance(restored.query, QueryInstance)
        assert restored.query.shape == "star"
        assert restored.enable_pruning

    def test_request_round_trip_bare_graph(self):
        from repro.optimizer.api import OptimizationRequest

        request = OptimizationRequest(
            query=chain_graph(4), allow_cross_products=True
        )
        restored = request_from_dict(
            json.loads(json.dumps(request_to_dict(request)))
        )
        assert restored.query == chain_graph(4)
        assert restored.allow_cross_products

    def test_result_round_trip(self):
        catalog = attach_random_statistics(chain_graph(5), seed=1)
        result = optimize_query(catalog, algorithm="tdmincutbranch")
        document = json.loads(json.dumps(result_to_dict(result)))
        restored = result_from_dict(document)
        assert math.isclose(restored.plan.cost, result.plan.cost, rel_tol=1e-9)
        assert restored.memo_entries == result.memo_entries
        assert restored.cost_evaluations == result.cost_evaluations
        assert restored.ok

    def test_error_result_round_trip(self):
        from repro.optimizer.api import OptimizationResult

        failed = OptimizationResult(
            plan=None,
            algorithm="dpccp",
            elapsed_seconds=0.1,
            memo_entries=0,
            cost_evaluations=0,
            cardinality_estimations=0,
            error="OptimizationError: nope",
            tag="bad",
        )
        restored = result_from_dict(
            json.loads(json.dumps(result_to_dict(failed)))
        )
        assert not restored.ok and restored.plan is None
        assert restored.error == failed.error and restored.tag == "bad"

    def test_kind_checks(self):
        with pytest.raises(ReproError):
            request_from_dict({"kind": "join_tree"})
        with pytest.raises(ReproError):
            result_from_dict({"kind": "optimization_request"})

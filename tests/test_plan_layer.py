"""Unit tests for JoinTree, MemoTable and PlanBuilder."""

import math

import pytest

from repro import (
    CoutCostModel,
    JoinTree,
    PhysicalCostModel,
    PlanBuilder,
    chain_graph,
    uniform_statistics,
)
from repro.errors import OptimizationError
from repro.plan.memo import MemoTable


def _leaf(index, name, card):
    return JoinTree(vertex_set=1 << index, cardinality=card, cost=0.0, relation=name)


def _join(left, right, card, cost, impl="join"):
    return JoinTree(
        vertex_set=left.vertex_set | right.vertex_set,
        cardinality=card,
        cost=cost,
        left=left,
        right=right,
        implementation=impl,
    )


class TestJoinTree:
    def test_leaf_properties(self):
        leaf = _leaf(0, "R0", 100.0)
        assert leaf.is_leaf
        assert leaf.n_relations() == 1
        assert leaf.n_joins() == 0
        assert leaf.depth() == 0
        assert leaf.is_left_deep()
        leaf.validate()

    def test_inner_properties(self):
        t = _join(_leaf(0, "R0", 10), _leaf(1, "R1", 20), 200.0, 200.0)
        assert not t.is_leaf
        assert t.n_relations() == 2
        assert t.n_joins() == 1
        assert t.depth() == 1
        t.validate()

    def test_left_deep_detection(self):
        a, b, c, d = (_leaf(i, f"R{i}", 10) for i in range(4))
        left_deep = _join(_join(_join(a, b, 1, 1), c, 1, 1), d, 1, 1)
        assert left_deep.is_left_deep()
        bushy = _join(_join(a, b, 1, 1), _join(c, d, 1, 1), 1, 1)
        assert not bushy.is_left_deep()

    def test_leaves_order(self):
        t = _join(_join(_leaf(2, "R2", 1), _leaf(0, "R0", 1), 1, 1),
                  _leaf(1, "R1", 1), 1, 1)
        assert [l.relation for l in t.leaves()] == ["R2", "R0", "R1"]

    def test_inner_nodes_postorder(self):
        inner = _join(_leaf(0, "R0", 1), _leaf(1, "R1", 1), 1, 1)
        outer = _join(inner, _leaf(2, "R2", 1), 1, 1)
        nodes = list(outer.inner_nodes())
        assert nodes[-1] is outer
        assert len(nodes) == 2

    def test_validate_catches_overlap(self):
        bad = JoinTree(
            vertex_set=0b11,
            cardinality=1.0,
            cost=1.0,
            left=_leaf(0, "R0", 1),
            right=_leaf(0, "R0", 1),
        )
        with pytest.raises(AssertionError):
            bad.validate()

    def test_expression_rendering(self):
        t = _join(_leaf(0, "R0", 1), _leaf(1, "R1", 1), 1, 1)
        assert t.to_expression() == "(R0 ⋈ R1)"
        assert str(t) == "(R0 ⋈ R1)"

    def test_pretty_contains_cards(self):
        t = _join(_leaf(0, "R0", 5), _leaf(1, "R1", 7), 35.0, 35.0, "hash")
        out = t.pretty()
        assert "hash" in out
        assert "card=35" in out


class TestMemoTable:
    def test_leaf_initialization(self, uniform_chain5):
        memo = MemoTable(uniform_chain5)
        assert len(memo) == 5
        for v in range(5):
            entry = memo.lookup(1 << v)
            assert entry is not None
            assert entry.cost == 0.0
            assert entry.explored
            assert entry.cardinality == 1000.0

    def test_lookup_missing_is_none(self, uniform_chain5):
        memo = MemoTable(uniform_chain5)
        assert memo.lookup(0b11) is None

    def test_get_or_create(self, uniform_chain5):
        memo = MemoTable(uniform_chain5)
        entry = memo.get_or_create(0b11)
        assert memo.lookup(0b11) is entry
        assert memo.get_or_create(0b11) is entry
        assert not entry.explored
        assert entry.cost == math.inf

    def test_getitem_raises_for_missing(self, uniform_chain5):
        memo = MemoTable(uniform_chain5)
        with pytest.raises(OptimizationError):
            memo[0b111]

    def test_contains(self, uniform_chain5):
        memo = MemoTable(uniform_chain5)
        assert 0b1 in memo
        assert 0b11 not in memo

    def test_extract_plan_requires_finished_entry(self, uniform_chain5):
        memo = MemoTable(uniform_chain5)
        memo.get_or_create(0b11)
        with pytest.raises(OptimizationError):
            memo.extract_plan(0b11)

    def test_extract_plan_deep_left_deep_chain(self):
        # Regression: extraction used to recurse once per plan level, so
        # a left-deep chain beyond the interpreter recursion limit (or
        # far less, called from an already-deep stack) crashed with
        # RecursionError after the search itself had succeeded.  The
        # iterative extractor must materialize a 600-level tree.
        n = 600
        catalog = uniform_statistics(chain_graph(n))
        memo = MemoTable(catalog)
        prefix = 0b1
        for k in range(1, n):
            union = prefix | (1 << k)
            entry = memo.get_or_create(union)
            entry.cardinality = 1000.0
            entry.cost = float(k)
            entry.best_left = prefix
            entry.best_right = 1 << k
            entry.implementation = "join"
            entry.explored = True
            prefix = union
        plan = memo.extract_plan(prefix)
        assert plan.n_joins() == n - 1
        assert plan.is_left_deep

    def test_extract_leaf(self, uniform_chain5):
        memo = MemoTable(uniform_chain5)
        plan = memo.extract_plan(0b1)
        assert plan.is_leaf
        assert plan.relation == "R0"


class TestPlanBuilder:
    def test_build_trees_prices_both_orders(self):
        g = chain_graph(2)
        catalog = uniform_statistics(g)
        builder = PlanBuilder(catalog, PhysicalCostModel())
        builder.build_trees(0b11, 0b01, 0b10)
        assert builder.cost_evaluations == 2
        entry = builder.memo[0b11]
        assert entry.cost < math.inf
        assert entry.best_left | entry.best_right == 0b11

    def test_symmetric_model_prices_once_per_ccp(self):
        # C_out declares itself symmetric: the mirrored orientation can
        # never win the strict < comparison, so it is skipped and the
        # evaluation counter moves by one per ccp, not two.
        g = chain_graph(2)
        catalog = uniform_statistics(g)
        builder = PlanBuilder(catalog, CoutCostModel())
        builder.build_trees(0b11, 0b01, 0b10)
        assert builder.cost_evaluations == 1
        entry = builder.memo[0b11]
        assert entry.cost < math.inf
        assert entry.best_left == 0b01  # first-priced orientation kept

    def test_symmetric_flag_declarations(self):
        assert CoutCostModel.symmetric is True
        assert CoutCostModel().is_symmetric() is True
        assert PhysicalCostModel.symmetric is False
        assert PhysicalCostModel().is_symmetric() is False

    def test_cardinality_estimated_once(self):
        g = chain_graph(3)
        catalog = uniform_statistics(g)
        builder = PlanBuilder(catalog, CoutCostModel())
        builder.build_trees(0b011, 0b001, 0b010)
        builder.build_trees(0b110, 0b010, 0b100)
        builder.build_trees(0b111, 0b011, 0b100)
        builder.build_trees(0b111, 0b001, 0b110)
        # One estimation per multi-relation csg: {01},{12},{012}.
        assert builder.estimator.estimations == 3

    def test_keeps_cheaper_orientation(self):
        g = chain_graph(2)
        catalog = uniform_statistics(g)

        class LeftBiased(CoutCostModel):
            # Cheaper when the smaller set id comes first.
            def join_cost(self, left_card, right_card, output_card):
                return (left_card * 2 + right_card, "biased")

            def is_symmetric(self):
                return False

        builder = PlanBuilder(catalog, LeftBiased())
        builder.build_trees(0b11, 0b01, 0b10)
        entry = builder.memo[0b11]
        # Both cards equal here, so cost identical; orientation falls back
        # to the first-priced (left_set, right_set).
        assert entry.best_left == 0b01

    def test_asymmetric_model_picks_smaller_build_side(self):
        from repro import Catalog, Relation

        g = chain_graph(2)
        catalog = Catalog(
            g,
            [Relation("small", 10.0), Relation("big", 10000.0)],
            {(0, 1): 0.5},
        )
        builder = PlanBuilder(catalog, PhysicalCostModel())
        builder.build_trees(0b11, 0b01, 0b10)
        entry = builder.memo[0b11]
        # All default implementations are cheaper with the small relation
        # as build/outer side, so the small side must be kept on the left
        # (nested loop: 10 + 10*10000/100 beats hash's 2*10 + 10000 here).
        assert entry.best_left == 0b01
        assert entry.implementation == "nestedloop"

"""Generic top-down join enumeration via memoization (Fig. 1).

``TopDownPlanGenerator`` is the paper's TDPLANGEN/TDPGSUB pair: a driver
that can be instantiated with any :class:`~repro.enumeration.base.PartitioningStrategy`.
The paper's named algorithms are instantiations:

* TDMINCUTBRANCH — driver + :class:`~repro.enumeration.mincutbranch.MinCutBranch`
* TDMINCUTLAZY   — driver + :class:`~repro.enumeration.mincutlazy.MinCutLazy`
* MEMOIZATIONBASIC — driver + :class:`~repro.enumeration.naive.NaivePartitioning`

An optional accumulated-cost bound implements the branch-and-bound pruning
the paper deliberately leaves out of its measurements ("pruning gives the
same advantage to all top-down algorithms"); it is off by default so that
benchmark comparisons against bottom-up remain raw, exactly as in the
paper, and can be switched on to demonstrate the top-down advantage the
conclusion anticipates.
"""

from __future__ import annotations

import math
import os
from typing import Callable, Optional

from repro import bitset
from repro.catalog.statistics import Catalog
from repro.cost.base import CostModel
from repro.cost.cout import CoutCostModel
from repro.enumeration.base import PartitioningStrategy
from repro.errors import DisconnectedGraphError
from repro.optimizer.budget import Budget, BudgetExpired
from repro.optimizer.kernel import run_fast_kernel
from repro.plan.builder import PlanBuilder
from repro.plan.jointree import JoinTree
from repro.plan.memo import MemoEntry

__all__ = ["TopDownPlanGenerator"]

#: Environment opt-out: set to any non-empty value to force the
#: paper-faithful recursive reference driver everywhere (ablations,
#: debugging).  The fast kernel produces bit-identical plans, so this
#: never changes answers — only speed and the recursion-depth ceiling.
REFERENCE_KERNEL_ENV = "REPRO_REFERENCE_KERNEL"


class TopDownPlanGenerator:
    """TDPLANGEN: top-down join enumeration with memoization.

    Parameters
    ----------
    catalog:
        Query statistics (graph + cardinalities + selectivities).
    partitioning_factory:
        Callable building a partitioning strategy from the query graph,
        e.g. ``MinCutBranch`` itself or ``lambda g: MinCutBranch(g, ...)``.
    cost_model:
        Join pricing; defaults to the paper's ``C_out``.
    enable_pruning:
        Switch on accumulated-cost branch-and-bound (see
        :mod:`repro.optimizer.pruning` for the analysis helpers).
    use_kernel:
        ``None`` (default) selects the fast enumeration kernel
        (:mod:`repro.optimizer.kernel`) automatically whenever pruning is
        off, unless the ``REPRO_REFERENCE_KERNEL`` environment variable
        forces the reference path.  ``False`` always runs the
        paper-faithful recursive reference driver; ``True`` insists on
        the kernel (still ignored under pruning, which remains on the
        reference path).  Both paths produce bit-identical plans and
        counters; ``last_kernel`` reports which one ran.
    budget:
        Optional cooperative :class:`~repro.optimizer.budget.Budget`.
        When it expires mid-enumeration the run stops cleanly,
        ``budget_expired`` is set, and :meth:`optimize` returns a
        salvaged plan (see :mod:`repro.plan.salvage`) instead of the
        exact optimum; ``salvage_report`` then carries the optimality
        report.
    """

    name = "topdown"

    #: The service layer threads per-request deadlines only into engines
    #: that advertise cooperative budget support.
    supports_budget = True

    def __init__(
        self,
        catalog: Catalog,
        partitioning_factory: Callable[..., PartitioningStrategy],
        cost_model: Optional[CostModel] = None,
        enable_pruning: bool = False,
        use_kernel: Optional[bool] = None,
        budget: Optional[Budget] = None,
    ):
        self.catalog = catalog
        self.graph = catalog.graph
        self.cost_model = cost_model if cost_model is not None else CoutCostModel()
        self.partitioner = partitioning_factory(self.graph)
        self.builder = PlanBuilder(catalog, self.cost_model)
        self.enable_pruning = enable_pruning
        self.use_kernel = use_kernel
        self.budget = budget
        self.budget_expired = False
        self.salvage_report = None
        self.last_kernel: Optional[str] = None
        #: The top-down driver always runs in the interpreter — the
        #: native rungs live behind the dpconv tier — but reporting the
        #: engine uniformly lets the service label every result with a
        #: ``backend`` (see :mod:`repro.optimizer.native`).
        self.last_backend = "python"
        self.pruned_sets = 0
        self._proven_budget = {}

    # ------------------------------------------------------------------

    def _kernel_selected(self) -> bool:
        """Resolve whether this run takes the fast kernel path."""
        if self.enable_pruning:
            # Branch-and-bound budgets thread through the recursion;
            # pruning stays on the reference driver (and prunes away the
            # constant-factor problem the kernel exists to solve).
            return False
        if self.use_kernel is not None:
            return self.use_kernel
        return not os.environ.get(REFERENCE_KERNEL_ENV)

    def optimize(self) -> JoinTree:
        """Return an optimal bushy, cross-product-free join tree for G.

        Raises :class:`DisconnectedGraphError` when the query graph is
        disconnected (the search space excludes cross products).
        """
        all_vertices = self.graph.all_vertices
        if not self.graph.is_connected(all_vertices):
            raise DisconnectedGraphError(
                "query graph is disconnected; the cross-product-free search "
                "space has no solution (join the components explicitly)"
            )
        try:
            if self.enable_pruning:
                self.last_kernel = "reference"
                self._tdpg_sub_pruning(all_vertices, self._initial_upper_bound())
            elif self._kernel_selected():
                self.last_kernel = "fast"
                run_fast_kernel(self, all_vertices)
            else:
                self.last_kernel = "reference"
                self._tdpg_sub(all_vertices)
        except BudgetExpired:
            self.budget_expired = True
            return self._salvage(all_vertices)
        return self.builder.memo.extract_plan(all_vertices)

    def _salvage(self, root_set: int) -> JoinTree:
        """Complete the partial memo into a valid plan after budget expiry."""
        from repro.plan.salvage import salvage_plan

        plan, report = salvage_plan(
            self.builder.memo, self.catalog, root_set, self.cost_model
        )
        self.salvage_report = report
        return plan

    def _initial_upper_bound(self) -> float:
        """Seed the branch-and-bound budget with a greedy plan's cost.

        A feasible plan's cost under the active cost model is a valid
        budget: the optimum cannot exceed it, and pruning only discards
        candidates that provably cannot do better.  GOO (greedy operator
        ordering) provides the plan; its joins are re-priced under this
        driver's cost model (GOO itself optimizes C_out).  Falls back to
        an unbounded search if the heuristic fails for any reason.
        """
        try:
            from repro.heuristics.goo import greedy_operator_ordering

            plan = greedy_operator_ordering(self.catalog)
        except Exception:
            return math.inf
        total = 0.0
        for node in plan.inner_nodes():
            local, _ = self.cost_model.join_cost(
                node.left.cardinality, node.right.cardinality, node.cardinality
            )
            total += local
        # Guard against last-ulp float differences between this pricing
        # and the search's own accumulation order.
        return total * (1.0 + 1e-9)

    # ------------------------------------------------------------------

    def _tdpg_sub(self, vertex_set: int) -> MemoEntry:
        """TDPGSUB (Fig. 1): fill the memo entry for one connected set."""
        memo = self.builder.memo
        entry = memo.get_or_create(vertex_set)
        if entry.explored:
            return entry
        budget = self.budget
        if budget is not None:
            budget.charge()
        lookup = memo.lookup
        build = self.builder.build_trees
        recurse = self._tdpg_sub
        countdown = 256
        for left_set, right_set in self.partitioner.partitions(vertex_set):
            if budget is not None:
                countdown -= 1
                if not countdown:
                    countdown = 256
                    budget.check()
            left = lookup(left_set)
            if left is None or not left.explored:
                recurse(left_set)
            right = lookup(right_set)
            if right is None or not right.explored:
                recurse(right_set)
            build(vertex_set, left_set, right_set)
        entry.explored = True
        return entry

    # ------------------------------------------------------------------
    # Branch-and-bound pruning (the paper's anticipated top-down advantage)
    # ------------------------------------------------------------------

    def _tdpg_sub_pruning(self, vertex_set: int, budget: float) -> float:
        """TDPGSUB with accumulated-cost branch-and-bound.

        Returns the optimal cost for ``vertex_set`` if it is at most
        ``budget``, else ``inf`` (proving the optimum exceeds the budget).
        Soundness relies on the cost model's local join cost being at least
        the output cardinality (true for ``C_out`` and the default
        physical model), which makes the result cardinality an admissible
        lower bound on any plan's cost.  ``_proven_budget`` records the
        largest budget each set was searched under: a memoized cost is
        exact once it is at most that budget.
        """
        memo = self.builder.memo
        entry = memo.get_or_create(vertex_set)
        if entry.is_leaf:
            return entry.cost
        proven = self._proven_budget.get(vertex_set, -math.inf)
        if entry.cost <= proven:
            return entry.cost if entry.cost <= budget else math.inf
        if proven >= budget:
            # Already proven that the optimum exceeds this budget.
            self.pruned_sets += 1
            return math.inf
        lower_bound = self._cost_lower_bound(vertex_set)
        if lower_bound > budget:
            self._proven_budget[vertex_set] = max(proven, budget)
            self.pruned_sets += 1
            return math.inf
        run_budget = self.budget
        if run_budget is not None:
            run_budget.charge()
        countdown = 256
        for left_set, right_set in self.partitioner.partitions(vertex_set):
            if run_budget is not None:
                countdown -= 1
                if not countdown:
                    countdown = 256
                    run_budget.check()
            bound = min(budget, entry.cost)
            join_bound = lower_bound  # local cost of the final join of S
            right_bound = self._cost_lower_bound(right_set)
            left_cost = self._tdpg_sub_pruning(
                left_set, bound - join_bound - right_bound
            )
            if left_cost == math.inf:
                continue
            right_cost = self._tdpg_sub_pruning(
                right_set, bound - join_bound - left_cost
            )
            if right_cost == math.inf:
                continue
            self.builder.build_trees(vertex_set, left_set, right_set)
        self._proven_budget[vertex_set] = max(proven, budget)
        if entry.cost <= budget:
            entry.explored = True
            return entry.cost
        return math.inf

    def _cost_lower_bound(self, vertex_set: int) -> float:
        """Admissible plan-cost lower bound for a relation set.

        A base relation costs nothing; any multi-relation plan must at
        least produce its final result, so the estimated result
        cardinality bounds the plan cost from below for cost models whose
        local join cost dominates the output cardinality.
        """
        if vertex_set & (vertex_set - 1) == 0:  # singleton
            return 0.0
        entry = self.builder.memo.get_or_create(vertex_set)
        if entry.cardinality is None:
            entry.cardinality = self.builder.estimator.estimate(vertex_set)
        return entry.cardinality

    # ------------------------------------------------------------------

    def count_ccps(self) -> int:
        """Number of ccps the partitioner emitted so far (both operands)."""
        return self.partitioner.stats.emitted

    def __repr__(self) -> str:
        return (
            f"TopDownPlanGenerator(partitioner={self.partitioner.name}, "
            f"cost_model={self.cost_model.name}, "
            f"n={self.graph.n_vertices})"
        )

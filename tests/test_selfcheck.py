"""Tests for the installation self-check battery."""

import pytest

from repro.analysis.selfcheck import CHECKS, run_self_check


def test_all_checks_pass():
    assert run_self_check(verbose=False)


def test_check_inventory():
    names = [name for name, _ in CHECKS]
    assert "partitioner equivalence" in names
    assert "optimizer agreement" in names
    assert "executor correctness" in names
    assert len(names) >= 7


@pytest.mark.parametrize("name,check", CHECKS, ids=[n for n, _ in CHECKS])
def test_individual_check(name, check):
    detail = check()  # raises on failure
    assert isinstance(detail, str) and detail


def test_failures_are_reported_not_raised(monkeypatch, capsys):
    import repro.analysis.selfcheck as selfcheck

    def broken():
        raise AssertionError("injected failure")

    monkeypatch.setattr(
        selfcheck, "CHECKS", [("injected", broken)] + selfcheck.CHECKS[:1]
    )
    assert not selfcheck.run_self_check(verbose=True)
    out = capsys.readouterr().out
    assert "[FAIL] injected: injected failure" in out
    assert "[ok ]" in out

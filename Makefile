# Development targets. `make verify` is the PR gate: the full test
# suite plus the service-cache smoke benchmark (which enforces the
# >= 10x warm-cache speedup floor and counter consistency).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test chaos bench-service bench-batch bench-resilience bench-observability bench-kernel bench-dpconv bench-native bench-anytime bench-frontdoor serve-smoke replay replay-smoke profile verify

test:
	$(PYTHON) -m pytest -x -q

# Chaos suite: scripted worker crashes/hangs/corrupted payloads through
# the fault-injection layer, breaker and admission behaviour, crash-safe
# cache persistence.
chaos:
	$(PYTHON) -m pytest -x -q tests/test_resilience.py

bench-service:
	$(PYTHON) benchmarks/bench_service_cache.py

# Multi-core speedup demo: process vs. thread batch backends.  Asserts
# the >= 1.5x floor only on multi-core hosts (pass --require-speedup in
# CI); result parity across backends is always enforced.
bench-batch:
	$(PYTHON) benchmarks/bench_batch_parallel.py

# Admission-control demo: an over-budget clique must be answered from
# the degradation ladder in < 10% of the exact enumeration time.
bench-resilience:
	$(PYTHON) benchmarks/bench_resilience.py

# Tracing overhead gate: enabled tracing must cost < 5% on a
# warm-cache batch, with every request still producing a retained trace.
bench-observability:
	$(PYTHON) benchmarks/bench_observability.py

# Fast-kernel gate: >= 1.3x geometric-mean speedup over the reference
# driver with bit-identical plans, and a deep chain (chain-200 smoke by
# default; --deep-chain for the full chain-600) must optimize and
# extract without RecursionError.  Writes BENCH_kernel.json.
bench-kernel:
	$(PYTHON) benchmarks/bench_kernel_speedup.py

# DPconv fast-exact tier gate: >= 1.5x over the fast kernel on
# clique-14 with bit-identical optimal cost and matching ccp counts
# (skips the speedup gate with a notice on machines too slow to time
# it).  Writes BENCH_dpconv.json.
bench-dpconv:
	$(PYTHON) benchmarks/bench_dpconv.py

# Native-backend gate: the best available native rung (compiled C,
# else numpy batch-DP) must beat the pure-python dpconv engine by a
# >= 5x geometric mean on the dense gate shapes, with bit-identical
# costs and ccp parity against the reference enumerator.  Skips with a
# notice on hosts without numpy (silent degradation is supported).
# Writes BENCH_native.json.
bench-native:
	$(PYTHON) benchmarks/bench_native_kernel.py

# Anytime gate: a 50ms-deadline clique-16 must return a *valid*
# salvaged plan within deadline + 20ms, never costlier than pure GOO,
# and the cooperative budget checks must cost <= 1% on the kernel's
# hot loops (geomean over everyday shapes; skipped with a notice when
# a plain-vs-plain control probe shows the machine cannot resolve 1%).
# Writes BENCH_anytime.json.
bench-anytime:
	$(PYTHON) benchmarks/bench_anytime.py

# Front-door serving gate: warm p99 must stay under the 250ms SLO with
# zero transport errors.  The 2x 4-shard scaling floor is enforced only
# on hosts with >= 4 cores (CI passes --require-scaling there).
bench-frontdoor:
	$(PYTHON) benchmarks/bench_frontdoor_qps.py

# Black-box serve smoke: boots `repro.cli serve` as a subprocess and
# exercises the v1 wire API (cold/warm optimize, typed 400s, healthz,
# stats, Prometheus exposition) over real HTTP.
serve-smoke:
	$(PYTHON) benchmarks/smoke_frontdoor.py

# Fleet dashboard: replay a seeded 3-tenant mixed-shape stream through
# an in-process service and render REPLAY.json + every registered
# figure into replay_out/ (deterministic for a fixed seed).
replay:
	$(PYTHON) -m repro.cli replay --outdir replay_out

# Replay smoke gate: seeded stream against a live 2-shard front door;
# asserts nonzero cache hits, >= 1 drift-triggered invalidation, zero
# stale-plan serves, and that every registered figure renders.
replay-smoke:
	$(PYTHON) benchmarks/smoke_replay.py

# Where the time goes when bench-kernel regresses: top-25 cProfile
# lines of the kernel path on clique-14.
profile:
	$(PYTHON) benchmarks/bench_kernel_speedup.py --profile

verify: test bench-service bench-resilience bench-observability bench-kernel bench-dpconv bench-native bench-anytime serve-smoke bench-frontdoor replay-smoke
	@echo "verify: ok"

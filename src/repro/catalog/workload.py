"""Workload generation: query graphs with attached random statistics.

Reproduces the paper's generic query graph generator (Sec. IV-A): fixed
shapes plus random acyclic/cyclic graphs, with "cardinalities and
selectivities ... attached using a random generator with a Gaussian
distribution".  Since the paper ignores pruning, these numbers do not
influence the search space — but they do exercise the cost path, so the
benchmark remains an end-to-end plan generation measurement as in the
paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.catalog.statistics import Catalog, Relation
from repro.errors import GraphError
from repro.graph.query_graph import QueryGraph
from repro.graph.random import random_acyclic_graph, random_cyclic_graph
from repro.graph.shapes import make_shape

__all__ = [
    "attach_random_statistics",
    "uniform_statistics",
    "QueryInstance",
    "WorkloadGenerator",
    "paper_workload",
]

#: Gaussian parameters for base-10 log-cardinalities: mean 10^4 rows, one
#: order of magnitude standard deviation, clamped to [10, 10^7].
_LOG10_CARD_MEAN = 4.0
_LOG10_CARD_STDDEV = 1.0
_CARD_MIN = 10.0
_CARD_MAX = 1.0e7

#: Gaussian parameters for selectivities, clamped into (0, 1].
_SEL_MEAN = 0.1
_SEL_STDDEV = 0.1
_SEL_MIN = 1.0e-4
_SEL_MAX = 1.0


def attach_random_statistics(
    graph: QueryGraph,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Catalog:
    """Attach Gaussian-distributed cardinalities and selectivities.

    Cardinalities are log-normal (Gaussian in log10-space) to span several
    orders of magnitude like real base tables; selectivities are Gaussian
    around a selective mean, clamped into ``(0, 1]``.
    """
    generator = rng if rng is not None else random.Random(seed)
    relations = []
    for vertex in range(graph.n_vertices):
        log_card = generator.gauss(_LOG10_CARD_MEAN, _LOG10_CARD_STDDEV)
        card = min(max(10.0 ** log_card, _CARD_MIN), _CARD_MAX)
        relations.append(Relation(name=f"R{vertex}", cardinality=round(card)))
    selectivities = {}
    for edge in graph.edges:
        sel = generator.gauss(_SEL_MEAN, _SEL_STDDEV)
        selectivities[edge] = min(max(sel, _SEL_MIN), _SEL_MAX)
    return Catalog(graph, relations, selectivities)


def uniform_statistics(
    graph: QueryGraph, cardinality: float = 1000.0, selectivity: float = 0.01
) -> Catalog:
    """Attach identical statistics everywhere (deterministic test fixture)."""
    relations = [
        Relation(name=f"R{v}", cardinality=cardinality)
        for v in range(graph.n_vertices)
    ]
    selectivities = {edge: selectivity for edge in graph.edges}
    return Catalog(graph, relations, selectivities)


@dataclass
class QueryInstance:
    """One benchmark query: a graph, its statistics, and provenance labels."""

    graph: QueryGraph
    catalog: Catalog
    shape: str
    seed: Optional[int] = None

    @property
    def n_vertices(self) -> int:
        return self.graph.n_vertices

    @property
    def n_edges(self) -> int:
        return self.graph.n_edges


@dataclass
class WorkloadGenerator:
    """Seeded factory for the paper's workload families.

    Every generated instance is reproducible from ``(seed, parameters)``;
    the generator hands out independent child seeds so instances do not
    share RNG state.
    """

    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def _child_seed(self) -> int:
        return self._rng.randrange(2 ** 62)

    def fixed_shape(self, shape: str, n_vertices: int) -> QueryInstance:
        """Generate a chain/star/cycle/clique query with random statistics."""
        child = self._child_seed()
        graph = make_shape(shape, n_vertices)
        catalog = attach_random_statistics(graph, seed=child)
        return QueryInstance(graph=graph, catalog=catalog, shape=shape, seed=child)

    def random_acyclic(
        self, n_vertices: int, exclude_chain_and_star: bool = True
    ) -> QueryInstance:
        """Generate a random tree query (Fig. 12 workload)."""
        child = self._child_seed()
        # Trees on fewer than 5 vertices are always chains or stars, so
        # the exclusion only applies from n = 5 upward.
        graph = random_acyclic_graph(
            n_vertices,
            seed=child,
            exclude_chain_and_star=exclude_chain_and_star and n_vertices >= 5,
        )
        catalog = attach_random_statistics(graph, seed=child)
        return QueryInstance(graph=graph, catalog=catalog, shape="acyclic", seed=child)

    def random_cyclic(self, n_vertices: int, n_edges: int) -> QueryInstance:
        """Generate a random cyclic query (Figs. 15-17 workload)."""
        child = self._child_seed()
        graph = random_cyclic_graph(n_vertices, n_edges, seed=child)
        catalog = attach_random_statistics(graph, seed=child)
        return QueryInstance(graph=graph, catalog=catalog, shape="cyclic", seed=child)

    def random_cyclic_uniform_edges(self, n_vertices: int) -> QueryInstance:
        """Generate a random cyclic query with a uniform random edge count.

        Matches Sec. IV-A: "The number of vertices and edges for our random
        cyclic queries are uniformly distributed."
        """
        min_edges = n_vertices  # at least one cycle
        max_edges = n_vertices * (n_vertices - 1) // 2
        if min_edges > max_edges:
            raise GraphError(f"{n_vertices} vertices cannot form a cyclic graph")
        n_edges = self._rng.randint(min_edges, max_edges)
        return self.random_cyclic(n_vertices, n_edges)

    def series(
        self, shape: str, sizes: Sequence[int], per_size: int = 1
    ) -> Iterator[QueryInstance]:
        """Yield ``per_size`` instances of the given shape for every size."""
        for n_vertices in sizes:
            for _ in range(per_size):
                if shape in ("chain", "star", "cycle", "clique"):
                    yield self.fixed_shape(shape, n_vertices)
                elif shape == "acyclic":
                    yield self.random_acyclic(n_vertices)
                elif shape == "cyclic":
                    yield self.random_cyclic_uniform_edges(n_vertices)
                else:
                    raise GraphError(f"unknown workload shape {shape!r}")


def paper_workload(
    seed: int = 0,
    max_vertices: int = 12,
    per_class: int = 4,
) -> List["QueryInstance"]:
    """Build a mixed suite in the style of the paper's 25,500-graph workload.

    Sec. IV-A: chains, stars, cycles and cliques at every size, plus
    random acyclic and random cyclic graphs with uniformly distributed
    vertex and edge counts — all with Gaussian statistics.  Sizes are
    scaled to laptop budgets (``max_vertices``, ``per_class`` instances
    per shape and size); the returned list is fully determined by
    ``seed``.
    """
    generator = WorkloadGenerator(seed=seed)
    instances: List[QueryInstance] = []
    for n in range(4, max_vertices + 1):
        for shape in ("chain", "star", "cycle", "clique"):
            if shape == "clique" and n > min(max_vertices, 10):
                continue  # clique cost grows 3^n; cap like the paper's 100 s limit
            if shape == "star" and n > min(max_vertices, 11):
                continue
            instances.append(generator.fixed_shape(shape, n))
        for _ in range(per_class):
            instances.append(generator.random_acyclic(n))
            if n >= 4:
                instances.append(generator.random_cyclic_uniform_edges(n))
    return instances

"""Property-based tests for DPccp's csg/cmp enumeration (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QueryGraph, bitset
from repro.optimizer.dpccp import (
    enumerate_cmp,
    enumerate_csg,
    enumerate_csg_cmp_pairs,
)


@st.composite
def connected_graphs(draw, min_vertices=2, max_vertices=8):
    n = draw(st.integers(min_vertices, max_vertices))
    edges = set()
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        edges.add((parent, v))
    extra = draw(st.integers(0, 5))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return QueryGraph(n, sorted(edges))


class TestEnumerateCsg:
    @settings(max_examples=60, deadline=None)
    @given(connected_graphs())
    def test_unique_and_connected(self, graph):
        seen = set()
        for csg in enumerate_csg(graph):
            assert csg not in seen
            seen.add(csg)
            assert graph.is_connected(csg)

    @settings(max_examples=60, deadline=None)
    @given(connected_graphs())
    def test_complete(self, graph):
        # Exactly the connected subsets (cross-checked by brute force).
        expected = {
            s
            for s in range(1, graph.all_vertices + 1)
            if graph.is_connected(s)
        }
        assert set(enumerate_csg(graph)) == expected

    @settings(max_examples=60, deadline=None)
    @given(connected_graphs())
    def test_descending_seed_groups(self, graph):
        # Min-index groups appear in descending order; each csg belongs
        # to the group of its minimum vertex.
        previous_group = graph.n_vertices
        for csg in enumerate_csg(graph):
            group = bitset.lowest_index(csg)
            assert group <= previous_group
            previous_group = group


class TestEnumerateCmp:
    @settings(max_examples=50, deadline=None)
    @given(connected_graphs())
    def test_complement_invariants(self, graph):
        for csg in enumerate_csg(graph):
            for cmp_set in enumerate_cmp(graph, csg):
                assert csg & cmp_set == 0
                assert graph.is_connected(cmp_set)
                assert graph.are_connected_sets(csg, cmp_set)
                assert bitset.lowest_index(cmp_set) > bitset.lowest_index(csg)

    @settings(max_examples=40, deadline=None)
    @given(connected_graphs())
    def test_pairs_cover_every_ccp_once(self, graph):
        from repro.enumeration.counting import count_ccps

        pairs = list(enumerate_csg_cmp_pairs(graph))
        assert len(pairs) == len(set(pairs))
        assert len(pairs) == count_ccps(graph)

    @settings(max_examples=30, deadline=None)
    @given(connected_graphs())
    def test_dp_order_property(self, graph):
        # When a pair is processed, every pair for both operands has
        # already been emitted (the correctness invariant of DPccp).
        pairs = list(enumerate_csg_cmp_pairs(graph))
        total_for = {}
        for s1, s2 in pairs:
            union = s1 | s2
            total_for[union] = total_for.get(union, 0) + 1
        seen_for = {}
        for s1, s2 in pairs:
            for operand in (s1, s2):
                if operand & (operand - 1):
                    assert seen_for.get(operand, 0) == total_for[operand]
            union = s1 | s2
            seen_for[union] = seen_for.get(union, 0) + 1

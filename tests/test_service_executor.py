"""Tests for batch execution backends: serial/thread/process, deadlines.

The process backend is the one that truly parallelizes CPU-bound
enumeration and the only one that can reclaim a hung item (by recycling
the worker process); these tests pin down backend parity, deadline
semantics, heuristic fallback, cache behaviour across executors, and
worker-crash isolation.
"""

import os
import threading
import time

import pytest

from repro import (
    OptimizationRequest,
    OptimizerService,
    QueryGraph,
    chain_graph,
    uniform_statistics,
)
from repro.catalog.workload import WorkloadGenerator
from repro.errors import OptimizationError
from repro.optimizer.api import (
    ALGORITHMS,
    register_algorithm,
    unregister_algorithm,
)
from repro.service.executor import ProcessPoolExecutor


def mixed_batch():
    """Healthy queries of several shapes plus a poisoned and a garbage item."""
    generator = WorkloadGenerator(seed=17)
    items = [
        OptimizationRequest(query=generator.fixed_shape("chain", 6), tag="chain"),
        OptimizationRequest(query=generator.fixed_shape("cycle", 6), tag="cycle"),
        uniform_statistics(QueryGraph(4, [(0, 1), (2, 3)])),  # disconnected
        OptimizationRequest(query=generator.fixed_shape("star", 6), tag="star"),
        42,  # garbage item mid-batch
        OptimizationRequest(query=generator.fixed_shape("clique", 6), tag="clique"),
    ]
    return items


def slow_request(n=13, tag="slow"):
    """A request whose exact enumeration takes seconds (naive partitioning
    on a clique is Theta(3^n) partitioner steps)."""
    instance = WorkloadGenerator(seed=5).fixed_shape("clique", n)
    return OptimizationRequest(
        query=instance, algorithm="memoizationbasic", tag=tag
    )


def slow_uncooperative_request(n=13, tag="slow"):
    """A slow request on a bottom-up engine with no cooperative-budget
    support: the executor's hard kill is the only way to reclaim it.
    (Top-down engines like ``memoizationbasic`` now honour batch
    deadlines cooperatively and return salvaged anytime plans instead —
    see tests/test_anytime.py.)"""
    instance = WorkloadGenerator(seed=5).fixed_shape("clique", n)
    return OptimizationRequest(query=instance, algorithm="dpsub", tag=tag)


def fast_request(tag="fast"):
    instance = WorkloadGenerator(seed=6).fixed_shape("chain", 5)
    return OptimizationRequest(query=instance, tag=tag)


class TestBackendParity:
    def test_all_executors_agree_on_mixed_batch(self):
        outcomes = {}
        for executor in ("serial", "thread", "process"):
            results = OptimizerService().optimize_batch(
                mixed_batch(), workers=2, executor=executor
            )
            outcomes[executor] = [
                round(r.cost, 6) if r.ok else f"error:{r.error.split(':')[0]}"
                for r in results
            ]
        assert outcomes["serial"] == outcomes["thread"] == outcomes["process"]
        # The two bad items failed, everything else planned.
        serial = outcomes["serial"]
        assert [isinstance(o, float) for o in serial] == [
            True, True, False, True, False, True,
        ]

    def test_process_batch_preserves_order_and_tags(self):
        generator = WorkloadGenerator(seed=7)
        requests = [
            OptimizationRequest(
                query=generator.fixed_shape("chain", 4 + i), tag=f"q{i}"
            )
            for i in range(4)
        ]
        results = OptimizerService().optimize_batch(
            requests, workers=2, executor="process"
        )
        assert [r.tag for r in results] == ["q0", "q1", "q2", "q3"]
        assert [r.plan.n_joins() for r in results] == [3, 4, 5, 6]
        for result in results:
            result.plan.validate()

    def test_explicit_process_executor_with_one_worker(self):
        results = OptimizerService().optimize_batch(
            [fast_request()], workers=1, executor="process"
        )
        assert results[0].ok


class TestCacheAcrossExecutors:
    def test_process_results_feed_the_shared_cache(self):
        service = OptimizerService()
        request = fast_request()
        cold = service.optimize_batch([request], workers=2, executor="process")
        assert not cold[0].cache_hit
        for executor in ("process", "thread", "serial"):
            warm = service.optimize_batch([request], workers=2, executor=executor)
            assert warm[0].cache_hit, executor
            assert warm[0].cost == pytest.approx(cold[0].cost)
        # Single-query path hits the same entry too.
        assert service.optimize(request).cache_hit

    def test_thread_results_hit_in_process_mode(self):
        service = OptimizerService()
        request = fast_request()
        service.optimize_batch([request], workers=2, executor="thread")
        warm = service.optimize_batch([request], workers=2, executor="process")
        assert warm[0].cache_hit
        snapshot = service.stats_snapshot()
        assert snapshot["totals"]["cache_hits"] == 1


class TestDeadlines:
    def test_process_deadline_yields_error_within_budget(self):
        service = OptimizerService()
        deadline = 0.4
        started = time.perf_counter()
        results = service.optimize_batch(
            [fast_request("f0"), slow_uncooperative_request(), fast_request("f1")],
            workers=2,
            executor="process",
            deadline_seconds=deadline,
        )
        wall = time.perf_counter() - started
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert "DeadlineExceededError" in results[1].error
        assert results[1].tag == "slow"
        # The slow item alone needs seconds; the deadline must have cut
        # it off within ~2x the budget (plus worker startup slack).
        assert wall < 2 * deadline + 1.5
        totals = service.stats_snapshot()["totals"]
        assert totals["timeouts"] == 1
        assert totals["errors"] == 1
        # The service stays fully usable after recycling the worker.
        follow_up = service.optimize(fast_request("followup"))
        assert follow_up.ok

    def test_process_deadline_fallback_serves_goo_plan(self):
        service = OptimizerService()
        results = service.optimize_batch(
            [slow_uncooperative_request()],
            workers=1,
            executor="process",
            deadline_seconds=0.4,
            fallback="goo",
        )
        result = results[0]
        assert result.ok and result.error is None
        assert result.details == {"deadline_timeout": 1, "fallback_goo": 1}
        result.plan.validate()
        assert result.plan.n_joins() == 12  # clique-13 joined completely
        totals = service.stats_snapshot()["totals"]
        assert totals["timeouts"] == 1
        assert totals["fallbacks"] == 1
        assert totals["errors"] == 0

    def test_fallback_plans_are_not_cached(self):
        service = OptimizerService()
        service.optimize_batch(
            [slow_uncooperative_request()],
            workers=1,
            executor="process",
            deadline_seconds=0.4,
            fallback="goo",
        )
        assert service.cache.stats()["size"] == 0

    def test_thread_soft_deadline(self):
        # Threads cannot be killed, so the deadline is soft: the batch
        # returns a timeout result promptly and the abandoned thread
        # finishes in the background.  Keep the stray work short (~1s).
        service = OptimizerService()
        started = time.perf_counter()
        results = service.optimize_batch(
            [fast_request(), slow_request(n=12, tag="s12")],
            workers=2,
            executor="thread",
            deadline_seconds=0.15,
        )
        wall = time.perf_counter() - started
        assert results[0].ok
        assert not results[1].ok
        assert "DeadlineExceededError" in results[1].error
        assert wall < 1.0
        assert service.stats_snapshot()["totals"]["timeouts"] == 1

    def test_no_deadline_means_no_timeouts(self):
        service = OptimizerService()
        results = service.optimize_batch(
            [fast_request() for _ in range(3)], workers=2, executor="process"
        )
        assert all(r.ok for r in results)
        assert service.stats_snapshot()["totals"]["timeouts"] == 0


def _register_blocking(release):
    """Register an algorithm that blocks until ``release`` is set."""

    class _BlockingOptimizer:
        def __init__(self, catalog, cost_model=None, enable_pruning=False):
            self._inner = ALGORITHMS["tdmincutbranch"](
                catalog, cost_model=cost_model, enable_pruning=enable_pruning
            )

        def optimize(self):
            release.wait(timeout=30.0)
            return self._inner.optimize()

        @property
        def builder(self):
            return self._inner.builder

    register_algorithm("_test_blocking")(_BlockingOptimizer)


def _blocking_request(tag):
    catalog = WorkloadGenerator(seed=6).fixed_shape("chain", 5).catalog
    return OptimizationRequest(query=catalog, algorithm="_test_blocking", tag=tag)


class TestThreadDeadlineDrift:
    """The thread backend's deadline budget is shared across the batch.

    Regression tests for a drift bug: ``future.result(timeout=...)`` was
    given the *full* deadline per item, so each hung item pushed every
    later item's cutoff back by another whole budget — N hung items made
    the batch take ~N x deadline instead of ~1 x.
    """

    def test_two_hung_items_resolve_within_one_deadline(self):
        release = threading.Event()
        _register_blocking(release)
        try:
            service = OptimizerService()
            deadline = 0.5
            started = time.perf_counter()
            results = service.optimize_batch(
                [_blocking_request("h0"), _blocking_request("h1")],
                workers=2,
                executor="thread",
                deadline_seconds=deadline,
            )
            wall = time.perf_counter() - started
            assert not results[0].ok and not results[1].ok
            assert all("DeadlineExceededError" in r.error for r in results)
            # Both items hang concurrently; with a shared budget the batch
            # resolves in ~1x the deadline.  The drift bug made this
            # >= 2x (one full timeout per hung item, sequentially).
            assert wall < 2 * deadline - 0.1, (
                f"batch took {wall:.2f}s for deadline={deadline}s — "
                "per-item budgets are drifting"
            )
            assert service.stats_snapshot()["totals"]["timeouts"] == 2
        finally:
            release.set()
            unregister_algorithm("_test_blocking")

    def test_timeout_results_report_true_elapsed(self):
        # With one worker the second hung item never leaves the queue:
        # it is cancelled outright and must report ~0 elapsed, while the
        # first reports the time it actually ran (~ the deadline).  The
        # drift bug stamped both with exactly deadline_seconds.
        release = threading.Event()
        _register_blocking(release)
        try:
            service = OptimizerService()
            deadline = 0.3
            results = service.optimize_batch(
                [_blocking_request("ran"), _blocking_request("queued")],
                workers=1,
                executor="thread",
                deadline_seconds=deadline,
            )
            assert not results[0].ok and not results[1].ok
            assert results[0].elapsed_seconds >= deadline * 0.9
            assert results[1].elapsed_seconds == 0.0
        finally:
            release.set()
            unregister_algorithm("_test_blocking")


class TestWorkerFailures:
    def test_dying_worker_is_isolated_and_replaced(self):
        # An "algorithm" that kills its own worker process exercises the
        # crash path: the batch must report the item as failed and still
        # complete the remaining items on a replacement worker.
        @register_algorithm("_test_suicide")
        def _make_suicide(catalog, cost_model=None, enable_pruning=False):
            class Suicide:
                builder = None

                def optimize(self):
                    os._exit(17)

            return Suicide()

        try:
            generator = WorkloadGenerator(seed=9)
            killer = OptimizationRequest(
                query=generator.fixed_shape("chain", 5),
                algorithm="_test_suicide",
                tag="boom",
            )
            results = OptimizerService().optimize_batch(
                [fast_request("a"), killer, fast_request("b")],
                workers=1,
                executor="process",
            )
            assert results[0].ok and results[2].ok
            assert not results[1].ok
            assert "worker process died" in results[1].error
        finally:
            unregister_algorithm("_test_suicide")

    def test_custom_cost_model_is_rejected_per_item(self):
        # Process mode cannot ship arbitrary cost models; the affected
        # item fails with a typed message, the rest of the batch runs.
        from repro.cost.cout import CoutCostModel

        class Custom(CoutCostModel):
            pass

        generator = WorkloadGenerator(seed=4)
        custom = OptimizationRequest(
            query=generator.fixed_shape("chain", 5),
            cost_model=Custom(),
            algorithm="dpccp",
            tag="custom",
        )
        results = OptimizerService().optimize_batch(
            [fast_request(), custom], workers=2, executor="process"
        )
        assert results[0].ok
        assert not results[1].ok
        assert "not serializable" in results[1].error


class TestValidation:
    def test_unknown_executor_rejected(self):
        with pytest.raises(OptimizationError):
            OptimizerService().optimize_batch([], executor="gpu")
        with pytest.raises(OptimizationError):
            OptimizerService(default_executor="gpu")

    def test_unknown_fallback_rejected(self):
        with pytest.raises(OptimizationError):
            OptimizerService().optimize_batch([], fallback="ikkbz")

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(OptimizationError):
            OptimizerService().optimize_batch([], deadline_seconds=0.0)
        with pytest.raises(OptimizationError):
            ProcessPoolExecutor(workers=2, deadline_seconds=-1.0)
        with pytest.raises(OptimizationError):
            ProcessPoolExecutor(workers=0)

    def test_empty_job_list(self):
        assert ProcessPoolExecutor(workers=2).run([]) == {}

    def test_service_defaults_flow_into_batches(self):
        service = OptimizerService(
            default_executor="process", default_deadline_seconds=0.4
        )
        results = service.optimize_batch(
            [slow_request(n=12)], workers=1
        )  # workers<=1 + no explicit executor → legacy serial, no deadline
        assert results[0].ok
        results = service.optimize_batch([slow_uncooperative_request()], workers=2)
        assert not results[0].ok
        assert "DeadlineExceededError" in results[0].error

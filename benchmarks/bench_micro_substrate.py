"""Micro-benchmarks for the substrate primitives.

The partitioners' O(1)-per-ccp claims stand on these primitives being
cheap: neighborhood lookups, connectivity flood fills, subset walks, and
biconnection-tree builds.  Tracking them separately catches substrate
regressions that the algorithm-level benches would mis-attribute.
"""

import pytest

from repro import BiconnectionTree, bitset, chain_graph, clique_graph, cycle_graph
from repro.graph.bcc import biconnected_components

N = 16


@pytest.mark.benchmark(group="micro-neighborhood")
@pytest.mark.parametrize("shape", ["chain", "clique"])
def test_neighborhood_full_set(benchmark, shape):
    graph = chain_graph(N) if shape == "chain" else clique_graph(N)
    half = graph.all_vertices >> (N // 2)

    def run():
        return graph.neighborhood(half)

    benchmark(run)


@pytest.mark.benchmark(group="micro-neighborhood")
def test_neighborhood_singleton_fast_path(benchmark):
    graph = clique_graph(N)
    benchmark(lambda: graph.neighborhood(1 << (N // 2)))


@pytest.mark.benchmark(group="micro-connectivity")
@pytest.mark.parametrize("shape", ["chain", "cycle", "clique"])
def test_is_connected(benchmark, shape):
    builders = {"chain": chain_graph, "cycle": cycle_graph, "clique": clique_graph}
    graph = builders[shape](N)
    target = graph.all_vertices & ~0b10  # drop one vertex

    result = benchmark(lambda: graph.is_connected(target))
    assert result == (shape != "chain")


@pytest.mark.benchmark(group="micro-subsets")
def test_subset_walk(benchmark):
    mask = (1 << 14) - 1

    def run():
        count = 0
        for _ in bitset.iter_nonempty_subsets(mask):
            count += 1
        return count

    assert benchmark(run) == 2 ** 14 - 1


@pytest.mark.benchmark(group="micro-bcc")
@pytest.mark.parametrize("shape", ["chain", "cycle", "clique"])
def test_biconnected_components(benchmark, shape):
    builders = {"chain": chain_graph, "cycle": cycle_graph, "clique": clique_graph}
    graph = builders[shape](N)
    benchmark(lambda: biconnected_components(graph, graph.all_vertices))


@pytest.mark.benchmark(group="micro-bcctree")
@pytest.mark.parametrize("shape", ["chain", "clique"])
def test_biconnection_tree_build(benchmark, shape):
    graph = chain_graph(N) if shape == "chain" else clique_graph(N)
    benchmark(lambda: BiconnectionTree(graph, graph.all_vertices, root=0))

"""Unit tests for the workload generator (paper Sec. IV-A)."""

import pytest

from repro import WorkloadGenerator, attach_random_statistics, uniform_statistics
from repro import chain_graph
from repro.catalog.workload import (
    _CARD_MAX,
    _CARD_MIN,
    _SEL_MAX,
    _SEL_MIN,
)
from repro.errors import GraphError


class TestAttachRandomStatistics:
    def test_all_edges_covered(self):
        g = chain_graph(6)
        catalog = attach_random_statistics(g, seed=1)
        for (u, v) in g.edges:
            assert 0 < catalog.selectivity(u, v) <= 1

    def test_bounds(self):
        g = chain_graph(30)
        catalog = attach_random_statistics(g, seed=2)
        for v in range(30):
            assert _CARD_MIN <= catalog.cardinality(v) <= _CARD_MAX
        for (u, v) in g.edges:
            assert _SEL_MIN <= catalog.selectivity(u, v) <= _SEL_MAX

    def test_determinism(self):
        g = chain_graph(5)
        a = attach_random_statistics(g, seed=3)
        b = attach_random_statistics(g, seed=3)
        assert [r.cardinality for r in a.relations] == [
            r.cardinality for r in b.relations
        ]

    def test_spread(self):
        # Gaussian log-cardinalities should span well over one order of
        # magnitude across many relations.
        g = chain_graph(50)
        catalog = attach_random_statistics(g, seed=4)
        cards = [r.cardinality for r in catalog.relations]
        assert max(cards) / min(cards) > 10


class TestUniformStatistics:
    def test_values(self):
        g = chain_graph(4)
        catalog = uniform_statistics(g, cardinality=500.0, selectivity=0.2)
        assert all(r.cardinality == 500.0 for r in catalog.relations)
        assert all(catalog.selectivity(u, v) == 0.2 for (u, v) in g.edges)


class TestWorkloadGenerator:
    def test_fixed_shapes(self):
        gen = WorkloadGenerator(seed=5)
        for shape in ("chain", "star", "cycle", "clique"):
            instance = gen.fixed_shape(shape, 6)
            assert instance.shape == shape
            assert instance.n_vertices == 6
            assert instance.graph.shape_name() == shape

    def test_random_acyclic_excludes_chain_star(self):
        gen = WorkloadGenerator(seed=6)
        for _ in range(20):
            instance = gen.random_acyclic(7)
            assert instance.graph.shape_name() == "tree"

    def test_random_cyclic_edge_count(self):
        gen = WorkloadGenerator(seed=7)
        instance = gen.random_cyclic(8, 12)
        assert instance.n_edges == 12

    def test_random_cyclic_uniform_edges_in_range(self):
        gen = WorkloadGenerator(seed=8)
        for _ in range(30):
            instance = gen.random_cyclic_uniform_edges(7)
            assert 7 <= instance.n_edges <= 21

    def test_uniform_edges_rejects_tiny(self):
        gen = WorkloadGenerator(seed=9)
        with pytest.raises(GraphError):
            gen.random_cyclic_uniform_edges(2)

    def test_series(self):
        gen = WorkloadGenerator(seed=10)
        instances = list(gen.series("chain", [4, 5], per_size=2))
        assert [i.n_vertices for i in instances] == [4, 4, 5, 5]

    def test_series_unknown_shape(self):
        gen = WorkloadGenerator(seed=11)
        with pytest.raises(GraphError):
            list(gen.series("moebius", [4]))

    def test_generator_determinism(self):
        a = list(WorkloadGenerator(seed=12).series("cyclic", [6, 7]))
        b = list(WorkloadGenerator(seed=12).series("cyclic", [6, 7]))
        assert [x.graph for x in a] == [y.graph for y in b]
        assert [x.seed for x in a] == [y.seed for y in b]

    def test_instances_have_independent_seeds(self):
        gen = WorkloadGenerator(seed=13)
        seeds = {gen.fixed_shape("chain", 5).seed for _ in range(10)}
        assert len(seeds) == 10


class TestPaperWorkload:
    def test_mixed_suite_composition(self):
        from repro.catalog import paper_workload

        suite = paper_workload(seed=3, max_vertices=8, per_class=2)
        shapes = {instance.shape for instance in suite}
        assert shapes == {"chain", "star", "cycle", "clique", "acyclic", "cyclic"}
        assert all(
            instance.graph.is_connected(instance.graph.all_vertices)
            for instance in suite
        )

    def test_deterministic(self):
        from repro.catalog import paper_workload

        a = paper_workload(seed=4, max_vertices=7)
        b = paper_workload(seed=4, max_vertices=7)
        assert [x.graph for x in a] == [y.graph for y in b]

    def test_caps_respected(self):
        from repro.catalog import paper_workload

        suite = paper_workload(seed=5, max_vertices=12, per_class=1)
        for instance in suite:
            if instance.shape == "clique":
                assert instance.n_vertices <= 10
            assert instance.n_vertices <= 12

    def test_every_instance_optimizes(self):
        from repro import optimize_query
        from repro.catalog import paper_workload

        suite = paper_workload(seed=6, max_vertices=6, per_class=1)
        for instance in suite:
            result = optimize_query(instance)
            result.plan.validate()

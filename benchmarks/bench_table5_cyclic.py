"""Table V: normalized runtimes vs DPccp on cyclic workloads.

On cliques MemoizationBasic becomes competitive (nearly every subset is
a valid ccp, so generate-and-test wastes little) while TDMinCutLazy
falls behind by its tree-rebuild factor — both effects the paper's
Table V reports.
"""

import pytest

from repro.optimizer.api import make_optimizer

from .conftest import make_instances

ALGORITHMS = ["dpccp", "tdmincutbranch", "tdmincutlazy", "memoizationbasic"]

_GEN = make_instances(seed=55)
_INSTANCES = {
    "cycle": _GEN.fixed_shape("cycle", 12),
    "clique": _GEN.fixed_shape("clique", 8),
    "cyclic": _GEN.random_cyclic(9, 18),
}


@pytest.mark.benchmark(group="table5-cycle")
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_normalized_cycle(benchmark, algorithm):
    catalog = _INSTANCES["cycle"].catalog
    plan = benchmark(lambda: make_optimizer(algorithm, catalog).optimize())
    assert plan.n_joins() == 11


@pytest.mark.benchmark(group="table5-clique")
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_normalized_clique(benchmark, algorithm):
    catalog = _INSTANCES["clique"].catalog
    plan = benchmark(lambda: make_optimizer(algorithm, catalog).optimize())
    assert plan.n_joins() == 7


@pytest.mark.benchmark(group="table5-cyclic")
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_normalized_cyclic(benchmark, algorithm):
    catalog = _INSTANCES["cyclic"].catalog
    plan = benchmark(lambda: make_optimizer(algorithm, catalog).optimize())
    assert plan.n_joins() == 8

"""Tests for the branch-and-bound pruning extension (paper Sec. I / V)."""

import math

import pytest

from repro import (
    CoutCostModel,
    PhysicalCostModel,
    attach_random_statistics,
    chain_graph,
    clique_graph,
    optimize_query,
    star_graph,
)
from repro.errors import OptimizationError

from .conftest import random_connected_graph


class TestSoundness:
    def test_pruned_matches_unpruned_cout(self, rng):
        for _ in range(30):
            graph = random_connected_graph(rng, max_vertices=8)
            catalog = attach_random_statistics(graph, rng=rng)
            plain = optimize_query(catalog, algorithm="tdmincutbranch")
            pruned = optimize_query(
                catalog, algorithm="tdmincutbranch", enable_pruning=True
            )
            assert math.isclose(plain.cost, pruned.cost, rel_tol=1e-9)

    def test_pruned_matches_unpruned_physical(self, rng):
        for _ in range(15):
            graph = random_connected_graph(rng, max_vertices=7)
            catalog = attach_random_statistics(graph, rng=rng)
            plain = optimize_query(
                catalog, algorithm="tdmincutbranch", cost_model=PhysicalCostModel()
            )
            pruned = optimize_query(
                catalog,
                algorithm="tdmincutbranch",
                cost_model=PhysicalCostModel(),
                enable_pruning=True,
            )
            assert math.isclose(plain.cost, pruned.cost, rel_tol=1e-9)

    def test_pruned_plan_is_valid(self, rng):
        for _ in range(10):
            graph = random_connected_graph(rng, max_vertices=7)
            catalog = attach_random_statistics(graph, rng=rng)
            result = optimize_query(
                catalog, algorithm="tdmincutbranch", enable_pruning=True
            )
            result.plan.validate()


class TestEffectiveness:
    def test_pruning_skips_work_on_skewed_stats(self):
        # With widely varying cardinalities, many subplans exceed the
        # budget and are cut.
        graph = clique_graph(8)
        catalog = attach_random_statistics(graph, seed=5)
        result = optimize_query(
            catalog, algorithm="tdmincutbranch", enable_pruning=True
        )
        assert result.details["pruned_sets"] > 0

    def test_pruning_reduces_cost_evaluations_sometimes(self, rng):
        reduced = 0
        for seed in range(10):
            graph = star_graph(8)
            catalog = attach_random_statistics(graph, seed=seed)
            plain = optimize_query(catalog, algorithm="tdmincutbranch")
            pruned = optimize_query(
                catalog, algorithm="tdmincutbranch", enable_pruning=True
            )
            if pruned.cost_evaluations < plain.cost_evaluations:
                reduced += 1
        assert reduced > 0

    def test_bottom_up_cannot_prune(self):
        graph = chain_graph(4)
        catalog = attach_random_statistics(graph, seed=0)
        for name in ("dpccp", "dpsub", "dpsize"):
            with pytest.raises(OptimizationError):
                optimize_query(catalog, algorithm=name, enable_pruning=True)

    def test_all_topdown_variants_support_pruning(self, rng):
        graph = random_connected_graph(rng, max_vertices=6)
        catalog = attach_random_statistics(graph, rng=rng)
        reference = optimize_query(catalog, algorithm="tdmincutbranch").cost
        for name in ("tdmincutbranch", "tdmincutlazy", "memoizationbasic"):
            result = optimize_query(
                catalog, algorithm=name, enable_pruning=True
            )
            assert math.isclose(result.cost, reference, rel_tol=1e-9)


class TestGreedySeededBudget:
    def test_upper_bound_seeding_slashes_work_on_cliques(self):
        from repro import attach_random_statistics, clique_graph, make_optimizer

        graph = clique_graph(9)
        catalog = attach_random_statistics(graph, seed=5)
        plain = make_optimizer("tdmincutbranch", catalog)
        plain.optimize()
        pruned = make_optimizer("tdmincutbranch", catalog, enable_pruning=True)
        pruned.optimize()
        # The GOO-seeded budget prunes the overwhelming majority of
        # subproblems on skewed statistics while keeping the optimum
        # (asserted by TestSoundness above).
        assert pruned.builder.cost_evaluations < plain.builder.cost_evaluations / 10
        assert pruned.pruned_sets > 1000

    def test_upper_bound_priced_under_active_model(self):
        from repro import (
            PhysicalCostModel,
            attach_random_statistics,
            clique_graph,
            make_optimizer,
        )

        graph = clique_graph(7)
        catalog = attach_random_statistics(graph, seed=6)
        optimizer = make_optimizer(
            "tdmincutbranch",
            catalog,
            cost_model=PhysicalCostModel(),
            enable_pruning=True,
        )
        plan = optimizer.optimize()
        unpruned = make_optimizer(
            "tdmincutbranch", catalog, cost_model=PhysicalCostModel()
        ).optimize()
        assert math.isclose(plan.cost, unpruned.cost, rel_tol=1e-9)

"""Experiment definitions: one per table/figure of the paper's evaluation.

Each experiment regenerates the rows/series the paper reports (Table I,
Fig. 9, Figs. 10-17, Tables IV-V) plus three ablation studies for the
design choices called out in DESIGN.md.  Run with::

    python -m repro.bench.report --all          # everything, writes text
    python -m repro.bench.report -e fig09       # one experiment

Two scales are supported: ``quick`` (seconds per experiment; default for
CI) and ``full`` (closer to the paper's ranges; minutes).  Absolute times
are Python-interpreter times and therefore differ from the paper's C++
numbers by a constant factor; the *relative* behaviour (who wins, the
curve shapes, the crossovers) is what these experiments reproduce.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.analysis import formulas
from repro.bench.runner import normalized_runtimes, time_optimizer, time_partitioning
from repro.catalog.workload import WorkloadGenerator
from repro.enumeration.counting import (
    count_ccps,
    count_connected_subgraphs,
    count_ngt_subsets,
)
from repro.enumeration.mincutbranch import MinCutBranch
from repro.enumeration.mincutlazy import MinCutLazy
from repro.errors import ReproError
from repro.graph.shapes import make_shape
from repro.optimizer.api import make_optimizer

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment"]


@dataclass
class ExperimentResult:
    """Rows and provenance for one regenerated table/figure."""

    experiment: str
    title: str
    paper_reference: str
    columns: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Plain-text table rendering."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            f"== {self.experiment}: {self.title} ==",
            f"   ({self.paper_reference})",
            "",
            "  ".join(c.ljust(w) for c, w in zip(self.columns, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Table I — search space sizes
# ----------------------------------------------------------------------

def table1(scale: str = "quick") -> ExperimentResult:
    """#csg / #ccp / #ngt for the four shapes at n = 5, 10, 15, 20."""
    result = ExperimentResult(
        experiment="table1",
        title="Search space sizes (#csg, #ccp, #ngt)",
        paper_reference="Table I",
        columns=["shape", "metric", "n=5", "n=10", "n=15", "n=20"],
    )
    sizes = (5, 10, 15, 20)
    # Exhaustive enumeration is feasible below these per-shape caps; the
    # larger entries come from the closed forms (which the tests verify
    # against enumeration wherever both are available).
    enumeration_cap = {"chain": 15, "star": 12, "cycle": 15, "clique": 9}
    for shape in ("chain", "star", "cycle", "clique"):
        analytic = {n: formulas.table1_row(shape, n) for n in sizes}
        enumerated: Dict[int, Dict[str, int]] = {}
        for n in sizes:
            if n <= enumeration_cap[shape]:
                graph = make_shape(shape, n)
                enumerated[n] = {
                    "csg": count_connected_subgraphs(graph),
                    "ccp": count_ccps(graph),
                    "ngt": count_ngt_subsets(graph),
                }
        for metric in ("csg", "ccp", "ngt"):
            row = [shape, f"#{metric}"]
            for n in sizes:
                value = analytic[n][metric]
                if n in enumerated and enumerated[n][metric] != value:
                    raise ReproError(
                        f"enumeration disagrees with formula for {shape} "
                        f"n={n} {metric}"
                    )
                suffix = "*" if n in enumerated else ""
                row.append(f"{value}{suffix}")
            result.rows.append(row)
    result.notes.append(
        "values marked * are cross-checked by exhaustive enumeration; all "
        "48 cells match the paper's Table I exactly"
    )
    return result


# ----------------------------------------------------------------------
# Fig. 9 — partitioning cost per emitted ccp on cliques
# ----------------------------------------------------------------------

def fig09(scale: str = "quick") -> ExperimentResult:
    """Per-ccp partitioning cost: MinCutLazy (quadratic) vs MinCutBranch (flat)."""
    sizes = range(4, 13 if scale == "quick" else 15)
    result = ExperimentResult(
        experiment="fig09",
        title="Cost per emitted ccp on clique queries",
        paper_reference="Figure 9",
        columns=[
            "n",
            "#ccp",
            "mcl_us_per_ccp",
            "mcb_us_per_ccp",
            "mcl/mcb",
        ],
    )
    gen = WorkloadGenerator(seed=909)
    ratios = []
    for n in sizes:
        instance = gen.fixed_shape("clique", n)
        n_ccps = 2 ** (n - 1) - 1
        lazy = time_partitioning("mincutlazy", instance, time_budget=0.3)
        branch = time_partitioning("mincutbranch", instance, time_budget=0.3)
        lazy_per = lazy.average / n_ccps * 1e6
        branch_per = branch.average / n_ccps * 1e6
        ratios.append(lazy_per / branch_per)
        result.rows.append(
            [
                str(n),
                str(n_ccps),
                f"{lazy_per:.2f}",
                f"{branch_per:.2f}",
                f"{lazy_per / branch_per:.2f}",
            ]
        )
    if ratios and ratios[-1] <= ratios[0]:
        result.notes.append(
            "WARNING: expected the MinCutLazy/MinCutBranch per-ccp ratio to "
            "grow with n (paper: quadratic vs constant)"
        )
    else:
        result.notes.append(
            "per-ccp gap widens with n: MinCutLazy pays O(n^2) tree "
            "rebuilds per ccp, MinCutBranch stays O(1), as in Fig. 9"
        )
    return result


# ----------------------------------------------------------------------
# Figs. 10-14 — plan generation time per shape
# ----------------------------------------------------------------------

def _planning_series(
    experiment: str,
    title: str,
    paper_reference: str,
    shape: str,
    sizes: Sequence[int],
    per_size: int = 1,
    seed: int = 1010,
) -> ExperimentResult:
    """TDMinCutLazy vs TDMinCutBranch total planning time (Figs. 10-14).

    The ``difference`` column is TDMCL - TDMCB, which per Sec. IV-C
    equals the difference of pure partitioning costs, since both share
    every other optimizer component.
    """
    result = ExperimentResult(
        experiment=experiment,
        title=title,
        paper_reference=paper_reference,
        columns=[
            "n",
            "tdmincutlazy_ms",
            "tdmincutbranch_ms",
            "difference_ms",
            "normalized",
        ],
    )
    gen = WorkloadGenerator(seed=seed)
    below_two = 0
    for n in sizes:
        lazy_ms: List[float] = []
        branch_ms: List[float] = []
        for instance in gen.series(shape, [n], per_size=per_size):
            lazy_ms.append(
                time_optimizer("tdmincutlazy", instance, 0.3).milliseconds
            )
            branch_ms.append(
                time_optimizer("tdmincutbranch", instance, 0.3).milliseconds
            )
        lazy_avg = statistics.mean(lazy_ms)
        branch_avg = statistics.mean(branch_ms)
        normalized = lazy_avg / branch_avg
        if normalized < 2.0:
            below_two += 1
        result.rows.append(
            [
                str(n),
                f"{lazy_avg:.3f}",
                f"{branch_avg:.3f}",
                f"{lazy_avg - branch_avg:.3f}",
                f"{normalized:.2f}",
            ]
        )
    result.notes.append(
        "difference = TDMCL - TDMCB = partitioning cost gap (Sec. IV-C); "
        "the paper reports normalized runtimes of 2-3x (acyclic/cycle) up "
        "to 5x+ (clique)"
    )
    if below_two > len(list(sizes)) // 2:
        result.notes.append(
            "WARNING: normalized runtime below 2 on most sizes — weaker "
            "separation than the paper's C++ implementation"
        )
    return result


def fig10(scale: str = "quick") -> ExperimentResult:
    sizes = [5, 8, 11, 14, 17] if scale == "quick" else list(range(5, 26, 2))
    return _planning_series(
        "fig10", "Plan generation time, chain queries", "Figure 10",
        "chain", sizes,
    )


def fig11(scale: str = "quick") -> ExperimentResult:
    sizes = [5, 7, 9, 11, 13] if scale == "quick" else list(range(5, 15))
    return _planning_series(
        "fig11", "Plan generation time, star queries", "Figure 11",
        "star", sizes,
    )


def fig12(scale: str = "quick") -> ExperimentResult:
    sizes = [6, 9, 12, 15] if scale == "quick" else list(range(5, 18))
    return _planning_series(
        "fig12",
        "Plan generation time, random acyclic queries (neither chain nor star)",
        "Figure 12",
        "acyclic",
        sizes,
        per_size=3,
    )


def fig13(scale: str = "quick") -> ExperimentResult:
    sizes = [5, 8, 11, 14] if scale == "quick" else list(range(4, 19))
    return _planning_series(
        "fig13", "Plan generation time, cycle queries", "Figure 13",
        "cycle", sizes,
    )


def fig14(scale: str = "quick") -> ExperimentResult:
    sizes = [4, 6, 8, 10] if scale == "quick" else list(range(4, 13))
    return _planning_series(
        "fig14", "Plan generation time, clique queries", "Figure 14",
        "clique", sizes,
    )


# ----------------------------------------------------------------------
# Figs. 15-17 — random cyclic queries, time vs edge count
# ----------------------------------------------------------------------

def _cyclic_series(
    experiment: str,
    paper_reference: str,
    n_vertices: int,
    edge_counts: Sequence[int],
    per_count: int,
    seed: int,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment=experiment,
        title=f"Plan generation time, random cyclic queries with "
        f"{n_vertices} vertices",
        paper_reference=paper_reference,
        columns=[
            "edges",
            "tdmincutlazy_ms",
            "tdmincutbranch_ms",
            "difference_ms",
            "normalized",
        ],
    )
    gen = WorkloadGenerator(seed=seed)
    for n_edges in edge_counts:
        lazy_ms: List[float] = []
        branch_ms: List[float] = []
        for _ in range(per_count):
            instance = gen.random_cyclic(n_vertices, n_edges)
            lazy_ms.append(
                time_optimizer("tdmincutlazy", instance, 0.25).milliseconds
            )
            branch_ms.append(
                time_optimizer("tdmincutbranch", instance, 0.25).milliseconds
            )
        lazy_avg = statistics.mean(lazy_ms)
        branch_avg = statistics.mean(branch_ms)
        result.rows.append(
            [
                str(n_edges),
                f"{lazy_avg:.3f}",
                f"{branch_avg:.3f}",
                f"{lazy_avg - branch_avg:.3f}",
                f"{lazy_avg / branch_avg:.2f}",
            ]
        )
    result.notes.append(
        "paper: normalized runtime 3-6x, rising with vertices and edges"
    )
    return result


def fig15(scale: str = "quick") -> ExperimentResult:
    edges = [9, 13, 17, 21, 25, 28] if scale == "quick" else list(range(8, 29))
    return _cyclic_series("fig15", "Figure 15", 8, edges, 3, 1515)


def fig16(scale: str = "quick") -> ExperimentResult:
    edges = [13, 18, 24, 30] if scale == "quick" else list(range(12, 40, 3))
    return _cyclic_series("fig16", "Figure 16", 12, edges, 2, 1616)


def fig17(scale: str = "quick") -> ExperimentResult:
    edges = [17, 20, 23] if scale == "quick" else list(range(16, 31, 2))
    return _cyclic_series("fig17", "Figure 17", 16, edges, 1, 1717)


# ----------------------------------------------------------------------
# Tables IV/V — normalized runtimes vs DPccp
# ----------------------------------------------------------------------

_TABLE_ALGORITHMS = ["dpccp", "memoizationbasic", "tdmincutlazy", "tdmincutbranch"]


def _normalized_table(
    experiment: str,
    paper_reference: str,
    workloads: Dict[str, List],
) -> ExperimentResult:
    result = ExperimentResult(
        experiment=experiment,
        title="Normalized runtimes relative to DPccp (min/max/avg)",
        paper_reference=paper_reference,
        columns=["workload", "algorithm", "min", "max", "avg"],
    )
    for workload_name, instances in workloads.items():
        summaries = normalized_runtimes(_TABLE_ALGORITHMS, instances)
        for summary in summaries:
            result.rows.append([workload_name] + summary.row())
    result.notes.append(
        "paper Table IV/V: TDMCB 0.66-1.47, TDMCL 1.48-8.0, "
        "MemoizationBasic up to 4 orders of magnitude on sparse shapes"
    )
    return result


def table4(scale: str = "quick") -> ExperimentResult:
    gen = WorkloadGenerator(seed=404)
    if scale == "quick":
        chain_sizes, star_sizes, acyclic_sizes = [8, 12], [7, 10], [8, 11]
        per = 1
    else:
        chain_sizes, star_sizes, acyclic_sizes = (
            list(range(5, 17, 2)),
            list(range(5, 13)),
            list(range(5, 15)),
        )
        per = 3
    workloads = {
        "chain": list(gen.series("chain", chain_sizes, per)),
        "star": list(gen.series("star", star_sizes, per)),
        "acyclic": list(gen.series("acyclic", acyclic_sizes, per)),
    }
    return _normalized_table("table4", "Table IV", workloads)


def table5(scale: str = "quick") -> ExperimentResult:
    gen = WorkloadGenerator(seed=505)
    if scale == "quick":
        cycle_sizes, clique_sizes, cyclic_sizes = [8, 12], [6, 9], [7, 9]
        per = 1
    else:
        cycle_sizes, clique_sizes, cyclic_sizes = (
            list(range(5, 17, 2)),
            list(range(4, 11)),
            list(range(6, 12)),
        )
        per = 2
    workloads = {
        "cycle": list(gen.series("cycle", cycle_sizes, per)),
        "clique": list(gen.series("clique", clique_sizes, per)),
        "cyclic": list(gen.series("cyclic", cyclic_sizes, per)),
    }
    return _normalized_table("table5", "Table V", workloads)


# ----------------------------------------------------------------------
# Ablations (DESIGN.md section 5)
# ----------------------------------------------------------------------

def ablation_mcb_opts(scale: str = "quick") -> ExperimentResult:
    """MinCutBranch with vs without the Sec. III-C optimization techniques."""
    result = ExperimentResult(
        experiment="ablation_mcb_opts",
        title="MinCutBranch optimization techniques (Sec. III-C) on/off",
        paper_reference="Sec. III-C",
        columns=["workload", "calls_on", "calls_off", "iters_on", "iters_off"],
    )
    from repro.catalog.workload import QueryInstance, uniform_statistics
    from repro.graph.shapes import grid_graph

    gen = WorkloadGenerator(seed=777)
    grid = grid_graph(3, 3)
    workloads = [
        (
            "grid3x3",
            QueryInstance(
                graph=grid, catalog=uniform_statistics(grid), shape="grid"
            ),
        ),
        ("cyclic10", gen.random_cyclic(10, 20)),
        ("clique8", gen.fixed_shape("clique", 8)),
    ]
    for name, instance in workloads:
        graph = instance.graph
        on = MinCutBranch(graph, use_optimizations=True)
        off = MinCutBranch(graph, use_optimizations=False)
        for _ in on.partitions(graph.all_vertices):
            pass
        for _ in off.partitions(graph.all_vertices):
            pass
        result.rows.append(
            [
                name,
                str(on.stats.calls),
                str(off.stats.calls),
                str(on.stats.loop_iterations + on.stats.reachable_calls),
                str(off.stats.loop_iterations + off.stats.reachable_calls),
            ]
        )
    result.notes.append(
        "the techniques cut child invocations on partially cyclic shapes; "
        "on cliques the complement never disconnects so they are no-ops"
    )
    return result


def ablation_mcl_reuse(scale: str = "quick") -> ExperimentResult:
    """MinCutLazy with vs without the IsUsable biconnection-tree reuse."""
    result = ExperimentResult(
        experiment="ablation_mcl_reuse",
        title="MinCutLazy IsUsable tree reuse on/off",
        paper_reference="Appendix A/B",
        columns=["workload", "builds_on", "builds_off", "cost_on", "cost_off"],
    )
    gen = WorkloadGenerator(seed=888)
    for shape, n in (("chain", 12), ("star", 10), ("cycle", 12), ("clique", 9)):
        instance = gen.fixed_shape(shape, n)
        graph = instance.graph
        on = MinCutLazy(graph, use_reuse_test=True)
        off = MinCutLazy(graph, use_reuse_test=False)
        for _ in on.partitions(graph.all_vertices):
            pass
        for _ in off.partitions(graph.all_vertices):
            pass
        result.rows.append(
            [
                f"{shape}{n}",
                str(on.stats.tree_builds),
                str(off.stats.tree_builds),
                str(on.stats.tree_build_cost),
                str(off.stats.tree_build_cost),
            ]
        )
    result.notes.append(
        "reuse collapses acyclic shapes to a single tree build; on cliques "
        "the conservative test never fires and both variants coincide"
    )
    return result


def ablation_pruning(scale: str = "quick") -> ExperimentResult:
    """Top-down accumulated-cost pruning on/off (paper Sec. I/V)."""
    result = ExperimentResult(
        experiment="ablation_pruning",
        title="Branch-and-bound pruning for TDMinCutBranch",
        paper_reference="Sec. I 'Important Note' / Sec. V",
        columns=[
            "workload",
            "cost_evals_off",
            "cost_evals_on",
            "pruned_sets",
            "same_plan_cost",
        ],
    )
    gen = WorkloadGenerator(seed=999)
    for shape, n in (("star", 9), ("clique", 8), ("cyclic", 9)):
        if shape == "cyclic":
            instance = gen.random_cyclic_uniform_edges(n)
        else:
            instance = gen.fixed_shape(shape, n)
        plain = make_optimizer("tdmincutbranch", instance.catalog)
        plain_plan = plain.optimize()
        pruned = make_optimizer(
            "tdmincutbranch", instance.catalog, enable_pruning=True
        )
        pruned_plan = pruned.optimize()
        same = abs(plain_plan.cost - pruned_plan.cost) <= 1e-9 * max(
            plain_plan.cost, 1.0
        )
        result.rows.append(
            [
                f"{shape}{n}",
                str(plain.builder.cost_evaluations),
                str(pruned.builder.cost_evaluations),
                str(pruned.pruned_sets),
                "yes" if same else "NO",
            ]
        )
    result.notes.append(
        "pruning preserves the optimal plan while skipping provably "
        "over-budget subproblems — the top-down advantage the paper's "
        "conclusion anticipates; bottom-up cannot prune this way"
    )
    return result


# ----------------------------------------------------------------------
# Extension experiments (beyond the paper's evaluation)
# ----------------------------------------------------------------------

def ext_hypergraph(scale: str = "quick") -> ExperimentResult:
    """Hypergraph optimization (the paper's future work): DPhyp vs oracles."""
    import time as _time

    from repro.catalog.hyper import attach_random_hyper_statistics
    from repro.graph.random import random_hypergraph
    from repro.optimizer.dphyp import DPhyp, HyperDPsub, TopDownHypBasic

    result = ExperimentResult(
        experiment="ext_hypergraph",
        title="Hypergraph join ordering: DPhyp vs exhaustive vs top-down",
        paper_reference="Sec. V future work; Moerkotte & Neumann SIGMOD'08",
        columns=["n", "ccps", "dphyp_ms", "hyperdpsub_ms", "tdhypbasic_ms", "agree"],
    )
    sizes = (6, 8, 10) if scale == "quick" else (6, 8, 10, 12)
    for n in sizes:
        hypergraph = random_hypergraph(n, n_complex_edges=2, seed=n)
        catalog = attach_random_hyper_statistics(hypergraph, seed=n)
        timings = {}
        costs = {}
        ccps = 0
        for name, cls in (
            ("dphyp", DPhyp),
            ("hyperdpsub", HyperDPsub),
            ("tdhypbasic", TopDownHypBasic),
        ):
            started = _time.perf_counter()
            optimizer = cls(catalog)
            plan = optimizer.optimize()
            timings[name] = (_time.perf_counter() - started) * 1e3
            costs[name] = plan.cost
            if name == "dphyp":
                ccps = optimizer.ccps_processed
        baseline = costs["hyperdpsub"]
        agree = all(abs(c - baseline) <= 1e-9 * baseline for c in costs.values())
        result.rows.append(
            [
                str(n),
                str(ccps),
                f"{timings['dphyp']:.2f}",
                f"{timings['hyperdpsub']:.2f}",
                f"{timings['tdhypbasic']:.2f}",
                "yes" if agree else "NO",
            ]
        )
    result.notes.append(
        "DPhyp enumerates only valid hypergraph ccps; the subset oracle "
        "pays 3^n; all three agree on plan cost"
    )
    return result


def ext_plan_quality(scale: str = "quick") -> ExperimentResult:
    """Plan quality of restricted spaces/heuristics vs the bushy optimum."""
    import statistics as _statistics

    from repro.heuristics import greedy_operator_ordering, optimal_left_deep
    from repro.optimizer.api import optimize_query

    result = ExperimentResult(
        experiment="ext_plan_quality",
        title="Left-deep / GOO plan quality relative to the bushy optimum",
        paper_reference="paper ref. [1] (Ioannidis & Kang)",
        columns=["workload", "leftdeep_med", "leftdeep_max", "goo_med", "goo_max"],
    )
    gen = WorkloadGenerator(seed=3131)
    per = 6 if scale == "quick" else 20
    for shape, n in (("acyclic", 9), ("cyclic", 8), ("star", 8)):
        left_ratios = []
        goo_ratios = []
        for _ in range(per):
            if shape == "acyclic":
                instance = gen.random_acyclic(n)
            elif shape == "cyclic":
                instance = gen.random_cyclic_uniform_edges(n)
            else:
                instance = gen.fixed_shape(shape, n)
            bushy = optimize_query(instance.catalog).cost
            left_ratios.append(optimal_left_deep(instance.catalog).cost / bushy)
            goo_ratios.append(
                greedy_operator_ordering(instance.catalog).cost / bushy
            )
        result.rows.append(
            [
                f"{shape}{n}",
                f"{_statistics.median(left_ratios):.3f}",
                f"{max(left_ratios):.3f}",
                f"{_statistics.median(goo_ratios):.3f}",
                f"{max(goo_ratios):.3f}",
            ]
        )
    result.notes.append(
        "ratios >= 1 by construction; the gap is what exhaustive bushy "
        "enumeration buys over restricted spaces and greedy heuristics"
    )
    return result


def ext_partitioners(scale: str = "quick") -> ExperimentResult:
    """All four partitioning strategies head-to-head, per shape."""
    from repro.enumeration.conservative import ConservativePartitioning
    from repro.enumeration.naive import NaivePartitioning

    result = ExperimentResult(
        experiment="ext_partitioners",
        title="Partitioning strategies: per-call work on the full set",
        paper_reference="Figs. 3-6, 18 generalization",
        columns=["shape", "ccps", "mcb_ms", "mcl_ms", "conservative_ms", "naive_ms"],
    )
    shapes = (
        (("chain", 14), ("star", 12), ("cycle", 12), ("clique", 9))
        if scale == "quick"
        else (("chain", 18), ("star", 13), ("cycle", 16), ("clique", 11))
    )
    import time as _time

    for shape, n in shapes:
        graph = make_shape(shape, n)
        timings = {}
        ccps = 0
        for name, cls in (
            ("mcb", MinCutBranch),
            ("mcl", MinCutLazy),
            ("conservative", ConservativePartitioning),
            ("naive", NaivePartitioning),
        ):
            started = _time.perf_counter()
            count = sum(1 for _ in cls(graph).partitions(graph.all_vertices))
            timings[name] = (_time.perf_counter() - started) * 1e3
            ccps = count
        result.rows.append(
            [
                f"{shape}{n}",
                str(ccps),
                f"{timings['mcb']:.3f}",
                f"{timings['mcl']:.3f}",
                f"{timings['conservative']:.3f}",
                f"{timings['naive']:.3f}",
            ]
        )
    result.notes.append(
        "the conservative strategy removes naive's exponential subset "
        "scan on sparse shapes but keeps a per-complement connectivity "
        "test; MinCutBranch removes that too"
    )
    return result


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

EXPERIMENTS: Dict[str, Callable[[str], ExperimentResult]] = {
    "table1": table1,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "table4": table4,
    "table5": table5,
    "ablation_mcb_opts": ablation_mcb_opts,
    "ablation_mcl_reuse": ablation_mcl_reuse,
    "ablation_pruning": ablation_pruning,
    "ext_hypergraph": ext_hypergraph,
    "ext_plan_quality": ext_plan_quality,
    "ext_partitioners": ext_partitioners,
}


def run_experiment(name: str, scale: str = "quick") -> ExperimentResult:
    """Run one experiment by registry name."""
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise ReproError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return fn(scale)

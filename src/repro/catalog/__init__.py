"""Catalog substrate: relations, join predicates, statistics, workloads."""

from repro.catalog.statistics import Catalog, Relation
from repro.catalog.workload import (
    attach_random_statistics,
    uniform_statistics,
    QueryInstance,
    WorkloadGenerator,
    paper_workload,
)

__all__ = [
    "Catalog",
    "Relation",
    "attach_random_statistics",
    "uniform_statistics",
    "QueryInstance",
    "WorkloadGenerator",
    "paper_workload",
]

"""Extension bench: the Star Schema Benchmark workload.

All SSB flights are star queries — the acyclic shape with the largest
ccp count (paper Fig. 11 territory) — with realistic FK selectivities
and dimension filters.
"""

import math

import pytest

from repro.optimizer.api import make_optimizer, optimize_query
from repro.workloads import ssb_query, ssb_query_names

ALGORITHMS = ["dpccp", "tdmincutbranch", "tdmincutlazy"]

_CATALOGS = {name: ssb_query(name) for name in ("q2.1", "q3.1", "q4.1")}


@pytest.mark.benchmark(group="ext-ssb-flight2")
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_q21(benchmark, algorithm):
    catalog = _CATALOGS["q2.1"]
    plan = benchmark(lambda: make_optimizer(algorithm, catalog).optimize())
    assert plan.n_joins() == 3


@pytest.mark.benchmark(group="ext-ssb-flight4")
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_q41(benchmark, algorithm):
    catalog = _CATALOGS["q4.1"]
    plan = benchmark(lambda: make_optimizer(algorithm, catalog).optimize())
    assert plan.n_joins() == 4


def test_all_flights_agree():
    for name in ssb_query_names():
        catalog = ssb_query(name)
        costs = [
            optimize_query(catalog, algorithm=a).cost for a in ALGORITHMS
        ]
        assert all(math.isclose(c, costs[0], rel_tol=1e-9) for c in costs)

#!/usr/bin/env python
"""Acceptance benchmark for the native (numpy / compiled C) dpconv rungs.

Times the full ``DPconvPlanGenerator.optimize()`` on the dense gate
shapes once per backend — the pure-python convolution
(``native_backend="off"``), the numpy batch-DP rung, and (when a
toolchain or cached build exists) the compiled C rung — and enforces:

* **speedup**: the geometric-mean speedup of the *best available native
  rung* over pure python across the gate shapes must reach
  :data:`SPEEDUP_FLOOR` — the native backends exist to lift the
  interpreter constant factor off the hottest loop in the system, and
  the bar is deliberately higher than any other gate in the repo,
* **equivalence**: per shape and backend, bit-equal optimal cost, equal
  ``cost_evaluations`` (the candidate-pricing count), and equal memo
  size against the pure engine — the statistics are powers of two, so
  cardinality arithmetic is exact and bit-identity is required,
* **ccp parity**: the pure dpconv engine itself is cross-checked against
  the reference top-down kernel on every shape, so the whole ladder is
  anchored to the paper-faithful enumerator, not just to itself.

On hosts without numpy the gate **skips with a loud notice** instead of
failing — silent degradation to pure python is a supported
configuration, and the CI matrix has a dedicated leg proving it.  A
missing C toolchain only drops the C rows (numpy still gates).

Methodology: per shape and backend, one warmup (also the equivalence
run), then best-of-N alternating timed runs — scheduler preemption only
adds time, so per-run minima converge on the true cost, and alternation
keeps machine-wide drift from landing on one backend.

The numbers land in ``BENCH_native.json`` (with the environment stanza
recording which backend actually resolved).

Run:  python benchmarks/bench_native_kernel.py [--repeat N]

Exit status is non-zero if any gate fails, so ``make bench-native`` (and
``make verify``) gate on it.
"""

from __future__ import annotations

import argparse
import math
import sys
import time

from repro.catalog.workload import uniform_statistics
from repro.cost.cout import CoutCostModel
from repro.enumeration.mincutbranch import MinCutBranch
from repro.graph.shapes import clique_graph, grid_graph
from repro.optimizer.dpconv import DPconvPlanGenerator
from repro.optimizer.topdown import TopDownPlanGenerator

#: Acceptance: geometric-mean speedup of the best available native rung
#: over the pure-python dpconv engine across the gate shapes.
SPEEDUP_FLOOR = 5.0

#: (label, graph builder, timed repetitions per backend).  The ISSUE's
#: gate shapes: dense graphs where the layered convolution touches all
#: O(3^n) splits and the contest is pure constant factor.
TIMED_SHAPES = [
    ("clique-10", lambda: clique_graph(10), 5),
    ("grid-3x4", lambda: grid_graph(3, 4), 5),
    ("clique-14", lambda: clique_graph(14), 3),
]


def make_catalog(graph):
    return uniform_statistics(graph, cardinality=4.0, selectivity=0.25)


def available_native_backends():
    """Native rungs this host can actually run, in preference order."""
    from repro.optimizer import native

    backends = []
    status = native.native_backend_status()
    if status["c_kernel"]["built"] or (
        status["cffi"]["available"] and status["compiler"]["available"]
    ):
        backends.append("c")
    if status["numpy"]["available"]:
        backends.append("numpy")
    return backends, status


def run_once(catalog, backend):
    """One full optimization; returns (seconds, optimizer, plan)."""
    if backend == "reference":
        optimizer = TopDownPlanGenerator(
            catalog, MinCutBranch, CoutCostModel(), use_kernel=True
        )
    else:
        optimizer = DPconvPlanGenerator(
            catalog, cost_model=CoutCostModel(), native_backend=backend
        )
    started = time.perf_counter()
    plan = optimizer.optimize()
    return time.perf_counter() - started, optimizer, plan


def bench_shape(label, graph, repeat, backends):
    """Best-of-N alternating timings plus per-backend equivalence checks."""
    catalog = make_catalog(graph)
    engines = ["off"] + backends
    # Warmups (also the runs used for the equivalence checks).
    warm = {engine: run_once(catalog, engine) for engine in engines}
    _, reference, ref_plan = run_once(catalog, "reference")
    problems = []
    _, pure, pure_plan = warm["off"]
    if pure.last_backend != "python":
        problems.append(
            f"{label}: native_backend='off' ran backend "
            f"{pure.last_backend!r}, expected 'python'"
        )
    if pure_plan.cost != ref_plan.cost:
        problems.append(
            f"{label}: pure dpconv cost {pure_plan.cost!r} differs from "
            f"reference kernel cost {ref_plan.cost!r}"
        )
    if pure.builder.cost_evaluations != reference.builder.cost_evaluations:
        problems.append(
            f"{label}: ccp counts differ from reference "
            f"({pure.builder.cost_evaluations} vs "
            f"{reference.builder.cost_evaluations})"
        )
    for backend in backends:
        _, conv, plan = warm[backend]
        if conv.last_backend != backend:
            problems.append(
                f"{label}: requested backend {backend!r} but "
                f"{conv.last_backend!r} ran"
            )
        if plan.cost != pure_plan.cost:
            problems.append(
                f"{label}/{backend}: cost {plan.cost!r} differs from "
                f"pure cost {pure_plan.cost!r} (bit-identity required)"
            )
        if conv.builder.cost_evaluations != pure.builder.cost_evaluations:
            problems.append(
                f"{label}/{backend}: cost_evaluations "
                f"{conv.builder.cost_evaluations} != "
                f"{pure.builder.cost_evaluations}"
            )
        if len(conv.builder.memo) != len(pure.builder.memo):
            problems.append(
                f"{label}/{backend}: memo size {len(conv.builder.memo)} "
                f"!= {len(pure.builder.memo)}"
            )
        plan.validate()
    best = {engine: math.inf for engine in engines}
    for index in range(repeat):
        order = engines if index % 2 == 0 else engines[::-1]
        for engine in order:
            elapsed, _, _ = run_once(catalog, engine)
            best[engine] = min(best[engine], elapsed)
    best_native = min(best[b] for b in backends)
    row = {
        "shape": label,
        "ccps": pure.builder.cost_evaluations,
        "cost": pure_plan.cost,
        "pure_ms": best["off"] * 1e3,
        "speedup": best["off"] / best_native,
    }
    for backend in backends:
        row[f"{backend}_ms"] = best[backend] * 1e3
        row[f"{backend}_speedup"] = best["off"] / best[backend]
    return row, problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repeat", type=int, default=None,
        help="override the per-shape timed repetitions",
    )
    parser.add_argument(
        "--output", default=None,
        help="where to write the JSON results (default: "
        "BENCH_native.json in the shared gate-report directory)",
    )
    args = parser.parse_args(argv)

    from repro.bench.report import write_bench_report

    backends, status = available_native_backends()
    if not backends:
        # Supported configuration, not a failure: the selection ladder
        # degrades to pure python and the rest of the suite still gates.
        notice = (
            "no native backend available on this host "
            f"(numpy={status['numpy']['available']}, "
            f"cffi={status['cffi']['available']}, "
            f"compiler={status['compiler']['available']}); "
            "skipping the native speedup gate"
        )
        print(f"SKIP: {notice}")
        args.output = write_bench_report(
            "native",
            {
                "bench": "native_kernel",
                "speedup_floor": SPEEDUP_FLOOR,
                "skipped": [notice],
                "shapes": [],
                "failures": [],
            },
            output=args.output,
        )
        print(f"wrote {args.output}")
        return 0

    print(
        "native-backend bench (best-of-N alternating runs per shape; "
        f"rungs: {', '.join(backends)})"
    )
    failures = []
    rows = []
    for label, builder, repeat in TIMED_SHAPES:
        row, problems = bench_shape(
            label, builder(), args.repeat or repeat, backends
        )
        failures.extend(problems)
        rows.append(row)
        native_cols = "  ".join(
            f"{b}={row[f'{b}_ms']:8.2f}ms ({row[f'{b}_speedup']:.1f}x)"
            for b in backends
        )
        print(
            f"{label:10s} pure={row['pure_ms']:9.2f}ms  {native_cols}"
        )

    geomean = math.exp(
        sum(math.log(row["speedup"]) for row in rows) / len(rows)
    )
    print(
        f"geometric-mean best-native speedup: {geomean:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    if geomean < SPEEDUP_FLOOR:
        failures.append(
            f"geometric-mean native speedup {geomean:.2f}x is below "
            f"the {SPEEDUP_FLOOR}x floor"
        )

    report = {
        "bench": "native_kernel",
        "speedup_floor": SPEEDUP_FLOOR,
        "geomean_speedup": geomean,
        "backends": backends,
        "shapes": rows,
        "skipped": [],
        "failures": failures,
    }
    args.output = write_bench_report("native", report, output=args.output)
    print(f"wrote {args.output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
